"""Edge-case tests of the combining protocols' internal mechanics:
node recycling, the departed-combiner slot, unfortunate interleavings,
handover boundaries, and oversubscribed combining."""


from repro.core import CCSynch, HybComb, OpTable
from repro.core.hybcomb import _DONE, _N_OPS, _THREAD_ID
from repro.machine import Machine, tile_gx
from repro.objects import LockedCounter


def build_hybcomb(nthreads, max_ops=200, **kw):
    m = Machine(tile_gx(debug_checks=True))
    table = OpTable()
    prim = HybComb(m, table, max_ops=max_ops, **kw)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [m.thread(t) for t in range(nthreads)]
    return m, prim, counter, ctxs


def run_all(m, procs):
    def coordinator():
        for p in procs:
            yield from p.join()

    m.sim.spawn(coordinator())
    m.run()
    for p in procs:
        assert not p.alive


# -- HYBCOMB internals ---------------------------------------------------------

def test_hybcomb_allocates_exactly_n_plus_one_nodes():
    """The paper: "only one additional node is allocated for all n
    threads" -- nodes are recycled through the departed slot, never
    allocated per operation."""
    nthreads = 6
    m, prim, counter, ctxs = build_hybcomb(nthreads)

    def client(ctx):
        for _ in range(40):
            yield from counter.increment(ctx)
            yield from ctx.work(9)

    procs = [m.spawn(ctx, client(ctx)) for ctx in ctxs]
    run_all(m, procs)
    # nodes created: one per thread (lazily) + the initial extra node
    assert len(prim._my_node) == nthreads
    all_nodes = set(prim._my_node.values()) | {m.mem.peek(prim.departed_addr)}
    assert len(all_nodes) == nthreads + 1


def test_hybcomb_node_thread_id_matches_owner_after_recycling():
    """Invariant I2: my_node.thread_id == id(t), across many exchanges."""
    m, prim, counter, ctxs = build_hybcomb(5, max_ops=2)

    def client(ctx):
        for _ in range(30):
            yield from counter.increment(ctx)
            yield from ctx.work(3)

    procs = [m.spawn(ctx, client(ctx)) for ctx in ctxs]
    run_all(m, procs)
    for tid, node in prim._my_node.items():
        assert m.mem.peek(node + _THREAD_ID) == tid


def test_hybcomb_departed_node_is_closed_and_done():
    """Between rounds, the node in the departed slot must be closed
    (n_ops >= MAX_OPS: stale references cannot register) and done."""
    m, prim, counter, ctxs = build_hybcomb(4, max_ops=3)

    def client(ctx):
        for _ in range(20):
            yield from counter.increment(ctx)
            yield from ctx.work(5)

    procs = [m.spawn(ctx, client(ctx)) for ctx in ctxs]
    run_all(m, procs)
    departed = m.mem.peek(prim.departed_addr)
    assert m.mem.peek(departed + _N_OPS) >= prim.max_ops
    assert m.mem.peek(departed + _DONE) == 1


def test_hybcomb_combiner_with_no_external_requests():
    """The paper's "very unfortunate case": a combiner may end up with
    only its own request.  Force it with a single thread -- every op
    FAA-fails (the node closed at the previous round) and combines
    alone.  Correctness must hold, only throughput suffers."""
    m, prim, counter, ctxs = build_hybcomb(1)

    def client(ctx):
        out = []
        for _ in range(10):
            v = yield from counter.increment(ctx)
            out.append(v)
        return out

    p = m.spawn(ctxs[0], client(ctxs[0]))
    run_all(m, [p])
    assert p.result == list(range(10))
    assert all(ops == 1 for _t, ops in prim.combining_sessions)


def test_hybcomb_oversubscribed_threads_share_cores():
    """Four HYBCOMB threads per core via the demux queues (§6): the
    algorithm is placement-oblivious as long as each thread keeps an
    exclusive hardware queue."""
    m = Machine(tile_gx(debug_checks=True))
    table = OpTable()
    prim = HybComb(m, table)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = []
    tid = 0
    for core in range(3):
        for d in range(4):
            ctxs.append(m.thread(tid, core_id=core, demux=d))
            tid += 1
    tickets = []

    def client(ctx):
        for _ in range(15):
            v = yield from counter.increment(ctx)
            tickets.append(v)
            yield from ctx.work(10)

    procs = [m.spawn(ctx, client(ctx)) for ctx in ctxs]
    run_all(m, procs)
    assert sorted(tickets) == list(range(12 * 15))


# -- CC-SYNCH internals -----------------------------------------------------------

def test_ccsynch_handover_mid_queue_at_max_ops():
    """When MAX_OPS is hit with requests still queued, the thread whose
    request was not served becomes the next combiner and serves the
    rest -- nothing is lost at the boundary."""
    m = Machine(tile_gx())
    table = OpTable()
    prim = CCSynch(m, table, max_ops=2)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [m.thread(t) for t in range(8)]
    tickets = []

    def client(ctx):
        for _ in range(25):
            v = yield from counter.increment(ctx)
            tickets.append(v)

    procs = [m.spawn(ctx, client(ctx)) for ctx in ctxs]
    run_all(m, procs)
    assert sorted(tickets) == list(range(200))
    assert max(ops for _t, ops in prim.combining_sessions) <= 2


def test_ccsynch_spare_node_rotation():
    """Each thread's spare node changes identity across operations (the
    swap-with-dummy recycling), but the total node population is
    threads + 1 (the shared dummy)."""
    m = Machine(tile_gx())
    table = OpTable()
    prim = CCSynch(m, table)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [m.thread(t) for t in range(4)]

    def client(ctx):
        for _ in range(20):
            yield from counter.increment(ctx)
            yield from ctx.work(7)

    procs = [m.spawn(ctx, client(ctx)) for ctx in ctxs]
    run_all(m, procs)
    nodes = set(prim._spare.values()) | {m.mem.peek(prim.tail_addr)}
    assert len(nodes) == 5


def test_fixed_combiner_hybcomb_clients_never_combine():
    m = Machine(tile_gx(debug_checks=True))
    table = OpTable()
    prim = HybComb(m, table, fixed_combiner_tid=0)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [m.thread(t) for t in range(1, 7)]
    tickets = []

    def client(ctx):
        for _ in range(20):
            v = yield from counter.increment(ctx)
            tickets.append(v)
            yield from ctx.work(4)

    procs = [m.spawn(ctx, client(ctx)) for ctx in ctxs]

    def coordinator():
        for p in procs:
            yield from p.join()

    m.sim.spawn(coordinator())
    m.run()
    assert sorted(tickets) == list(range(120))
    # only the fixed combiner's core ever serviced
    assert prim.servicing_cores() == [0]
    # clients executed no CAS at all (registration always succeeds)
    assert all(ctx.core.cas_ops == 0 for ctx in ctxs)


def test_fixed_combiner_ccsynch_clients_never_combine():
    m = Machine(tile_gx())
    table = OpTable()
    prim = CCSynch(m, table, fixed_combiner_tid=0)
    counter = LockedCounter(prim)
    prim.start()
    ctxs = [m.thread(t) for t in range(1, 6)]
    tickets = []

    def client(ctx):
        for _ in range(15):
            v = yield from counter.increment(ctx)
            tickets.append(v)
            yield from ctx.work(6)

    procs = [m.spawn(ctx, client(ctx)) for ctx in ctxs]

    def coordinator():
        for p in procs:
            yield from p.join()

    m.sim.spawn(coordinator())
    m.run()
    assert sorted(tickets) == list(range(75))
    assert prim.servicing_cores() == [0]
