"""Observability counters and causal tracing under fault injection.

A crashed or preempted core must not corrupt the books: completed ops
stay cycle-exactly attributed, a dead thread leaves at most its one
in-flight op unmatched, the service breakdown stays non-negative and
bounded by the window, and the event-derived stall registers keep
matching the cores' own hardware registers exactly.
"""

import repro.obs as obs
from repro.analysis.critpath import analyze_collector
from repro.faults import CrashThread, FaultPlan, PreemptThread
from repro.workload.driver import WorkloadSpec
from repro.workload.scenarios import run_counter_benchmark, run_fault_recovery_benchmark

SPEC = WorkloadSpec(warmup_cycles=5_000, measure_cycles=20_000)

#: crash one *client* mid-window (tid 0 is the mp-server's server thread)
CLIENT_CRASH = FaultPlan(seed=1, faults=(
    CrashThread(tid=3, at_cycle=SPEC.warmup_cycles + 5_000),
))

PREEMPT = FaultPlan(seed=2, faults=(
    PreemptThread(tid=2, start_cycle=SPEC.warmup_cycles + 2_000,
                  run_cycles=500, preempt_cycles=1_500,
                  until_cycle=SPEC.warmup_cycles + 15_000),
))


def _run(approach, plan, threads=5, spec=SPEC, recovery=False):
    with obs.observed(causal=True) as session:
        if recovery:
            r = run_fault_recovery_benchmark(threads, spec=spec,
                                             fault_plan=plan)
        else:
            r = run_counter_benchmark(approach, threads, spec=spec,
                                      fault_plan=plan)
    (ob,) = session.machines
    return r, ob


def test_crashed_client_leaves_no_dangling_blame():
    r, ob = _run("mp-server", CLIENT_CRASH)
    rep = analyze_collector(ob.causal)
    # completed ops are still cycle-exact...
    assert rep.ops
    for o in rep.ops:
        assert sum(o.blame.values()) == o.latency
    # ...and match what the driver measured
    assert sorted(o.latency for o in rep.measured_ops) == sorted(r.latency_samples)
    # the dead client's op plus at most one in-flight op per surviving
    # thread: nothing leaks beyond that
    assert 1 <= rep.incomplete_ops <= 5


def test_preempted_client_books_stay_exact():
    r, ob = _run("mp-server", PREEMPT)
    rep = analyze_collector(ob.causal)
    assert rep.ops
    for o in rep.ops:
        assert sum(o.blame.values()) == o.latency
    assert sorted(o.latency for o in rep.measured_ops) == sorted(r.latency_samples)
    # preemption stretches ops but never loses them mid-run
    assert rep.incomplete_ops <= 5


def test_service_breakdown_sane_under_crash():
    r, ob = _run("mp-server", CLIENT_CRASH)
    # counter-derived per-op service numbers survive the crash intact
    assert r.extra["obs.service_cycles_per_op"] >= 0
    assert 0 <= r.extra["obs.service_stall_per_op"] <= r.extra[
        "obs.service_cycles_per_op"]
    # the server core cannot have served more than the whole window
    assert (r.extra["obs.service_cycles_per_op"] * r.ops
            <= SPEC.measure_cycles)


def test_server_crash_and_failover_keeps_counters_consistent():
    """Crash the *primary server* mid-window (the fault-tolerant
    scenario): unmatched service spans must not corrupt the analysis."""
    plan = FaultPlan(seed=1, faults=(
        CrashThread(tid=0, at_cycle=SPEC.warmup_cycles + 6_000),
    ))
    r, ob = _run(None, plan, threads=4, recovery=True)
    assert r.ops > 0
    rep = analyze_collector(ob.causal)
    for o in rep.ops:
        assert sum(o.blame.values()) == o.latency
    assert all(v >= 0 for o in rep.ops for v in o.blame.values())


def test_event_stall_registers_match_hw_under_faults():
    """The double-count guard holds with crashed and preempted cores:
    event-derived stall registers equal the hardware registers."""
    for plan in (CLIENT_CRASH, PREEMPT):
        with obs.observed() as session:
            run_counter_benchmark("CC-Synch", 5, spec=SPEC, fault_plan=plan)
        (ob,) = session.machines
        snap = ob.counters.snapshot()
        for cid, hw in snap["hw"].items():
            ev = snap["core"].get(cid, {})
            for reg in ("stall_mem", "stall_atomic", "stall_fence"):
                assert ev.get(reg, 0) == hw[reg], (plan, cid, reg)
