"""Dashboard rendering (HTML + terminal) and the `report` CLI."""

import json

import pytest

import repro.obs as obs
from repro.analysis.dashboard import (
    chart_svg,
    mesh_svg,
    render_dashboard_html,
    render_dashboard_text,
    render_diff_html,
    text_sparkline,
    write_dashboard,
    write_mesh_svg,
)
from repro.obs import SLO
from repro.workload import WorkloadSpec
from repro.workload.scenarios import run_counter_benchmark

SPEC = WorkloadSpec(warmup_cycles=5_000, measure_cycles=30_000)


@pytest.fixture(scope="module")
def session():
    slos = (SLO("p99", kind="latency", target=1e9),
            SLO("tight", kind="latency", target=1.0))  # guaranteed breach
    with obs.observed(timeseries=True, sample_every=256, slos=slos,
                      flight=True) as s:
        run_counter_benchmark("mp-server", 6, spec=SPEC)
    return s


# -- building blocks -------------------------------------------------------

def test_chart_svg_is_inline_svg():
    svg = chart_svg([(0, 1.0), (10, 3.0), (20, 2.0)], color="#345",
                    hline=2.5, marks=((10, "#c00"),))
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "polyline" in svg
    assert "stroke-dasharray" in svg    # the threshold hline
    assert "#c00" in svg               # the breach mark
    assert "http://" not in svg and "https://" not in svg


def test_chart_svg_empty_and_flat_series():
    assert "<svg" in chart_svg([])
    # a constant series must not divide by zero on the value range
    assert "<svg" in chart_svg([(0, 5.0), (10, 5.0)])


def test_text_sparkline():
    s = text_sparkline([(i, float(i)) for i in range(8)], width=8)
    assert len(s) == 8
    assert s[0] == "▁" and s[-1] == "█"
    assert text_sparkline([]) == "(no samples)"


# -- full renders ----------------------------------------------------------

def test_html_dashboard_is_self_contained(tmp_path, session):
    html = render_dashboard_html(session, title="unit run",
                                 notes=("a note",))
    assert html.lstrip().startswith("<!DOCTYPE html>")
    assert "unit run" in html and "a note" in html
    assert "<svg" in html and "<style>" in html
    # self-contained: no external scripts, stylesheets, or images
    for needle in ("http://", "https://", "<script src", "<link", "<img"):
        assert needle not in html
    # the SLO table shows the induced breach and the healthy objective
    assert "tight" in html and "p99" in html
    path = write_dashboard(str(tmp_path / "dash.html"), session,
                           title="unit run", notes=("a note",))
    with open(path) as f:
        assert f.read() == html
    assert path.endswith("dash.html")


def test_text_dashboard_summarises_series_and_slos(session):
    txt = render_dashboard_text(session, title="unit run")
    assert "unit run" in txt
    assert "core.busy" in txt
    assert any(ch in txt for ch in "▁▂▃▄▅▆▇█")
    assert "BREACHED" in txt or "breach" in txt.lower()


def test_html_dashboard_escapes_untrusted_strings():
    """Run labels and series units are caller-supplied; a label like
    ``<script>...`` must render as text, never as markup."""
    with obs.observed(timeseries=True, sample_every=256) as s:
        run_counter_benchmark("mp-server", 4, spec=SPEC)
    ob = s.machines[0]
    ob.label = '<script>alert(1)</script>'
    ob.sampler.register('evil', lambda: 1.0, kind="gauge",
                        unit='<img src=x>')
    html = render_dashboard_html(s, title="esc")
    assert "<script>" not in html
    assert "&lt;script&gt;alert(1)&lt;/script&gt;" in html
    assert "<img" not in html
    assert "&lt;img src=x&gt;" in html


# -- mesh panels -----------------------------------------------------------

@pytest.fixture(scope="module")
def spatial_session():
    with obs.observed(timeseries=True, sample_every=256, spatial=True) as s:
        run_counter_benchmark("mp-server", 6, spec=SPEC)
    return s


def test_mesh_svg_draws_tiles_and_links(spatial_session):
    s = spatial_session.machines[0].spatial.summary()
    svg = mesh_svg(s)
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    mesh = s["mesh"]
    assert svg.count("<rect") == mesh["width"] * mesh["height"]
    assert svg.count("<line") == len(s["links"])
    assert "no NoC traffic" in mesh_svg(None)
    assert "no NoC traffic" in mesh_svg({"tiles": {}})


def test_write_mesh_svg_is_a_standalone_file(tmp_path, spatial_session):
    s = spatial_session.machines[0].spatial.summary()
    path = write_mesh_svg(str(tmp_path / "sub" / "mesh.svg"), s,
                          title='<fig3a>')
    doc = (tmp_path / "sub" / "mesh.svg").read_text()
    assert path.endswith("mesh.svg")
    assert doc.startswith('<?xml version="1.0"')
    assert 'xmlns="http://www.w3.org/2000/svg"' in doc
    assert "<title>&lt;fig3a&gt;</title>" in doc


def test_dashboards_include_the_mesh_panel(spatial_session):
    html = render_dashboard_html(spatial_session, title="mesh run")
    assert "<h2>mesh</h2>" in html
    assert "red border = sender backpressure" in html
    # per-link rings stay out of the series grid (they render as the mesh)
    assert "spatial.link." not in html
    txt = render_dashboard_text(spatial_session, title="mesh run")
    assert "6x6 mesh" in txt
    assert "spatial.link." not in txt


# -- diff pages ------------------------------------------------------------

def test_render_diff_html_structure_and_escaping():
    from repro.analysis.diff import diff_records, record_from_bench

    doc = {"figure": "f", "config_fingerprint": "x", "full": False,
           "series": {"<s>": [{"x": 1, "ops": 100,
                               "throughput_mops": 10.0}]}}
    doc2 = json.loads(json.dumps(doc))
    doc2["series"]["<s>"][0]["throughput_mops"] = 4.0
    d = diff_records(record_from_bench(doc, label='<a&b>'),
                     record_from_bench(doc2, label="b"),
                     gate=("throughput_mops",))
    page = render_diff_html(d, title="diff <t>")
    assert page.lstrip().startswith("<!DOCTYPE html>")
    assert "&lt;a&amp;b&gt;" in page and "<a&b>" not in page
    assert "&lt;s&gt;" in page and "<s>" not in page
    assert "diff &lt;t&gt;" in page
    assert "verdict: regressed" in page
    assert "gate FAIL" in page
    for needle in ("http://", "https://", "<script", "<link", "<img"):
        assert needle not in page


# -- the report CLI --------------------------------------------------------

def _tiny_experiment(quick=True, jobs=None):
    from repro.analysis.series import FigureData
    fig = FigureData("tiny", "tiny shootout", "threads", "Mops/s")
    fig.add_point("mp-server", 4.0,
                  run_counter_benchmark("mp-server", 4, spec=SPEC))
    fig.note("stub experiment for CLI tests")
    return fig


def test_report_cli_writes_dashboard(tmp_path, monkeypatch, capsys):
    import repro.experiments.registry as registry
    from repro.__main__ import main

    monkeypatch.setitem(registry.EXPERIMENTS, "tiny", _tiny_experiment)
    out = str(tmp_path / "report")
    rc = main(["report", "tiny", "--out", out, "--sample-every", "256"])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "tiny shootout" in captured
    html = (tmp_path / "report" / "tiny-dashboard.html").read_text()
    assert "<svg" in html and "stub experiment for CLI tests" in html


def test_report_cli_rejects_unknown_experiment(capsys):
    from repro.__main__ import main

    assert main(["report", "no-such-exp"]) == 2
    assert "no-such-exp" in capsys.readouterr().err


def test_report_cli_layer_flag_narrows_stack(tmp_path, monkeypatch):
    import repro.experiments.registry as registry
    from repro.__main__ import main

    seen = {}
    real_observed = obs.observed

    def spy(**options):
        seen.update(options)
        return real_observed(**options)

    monkeypatch.setitem(registry.EXPERIMENTS, "tiny", _tiny_experiment)
    monkeypatch.setattr("repro.obs.observed", spy)
    out = str(tmp_path / "r2")
    assert main(["report", "tiny", "--out", out, "--timeseries"]) == 0
    assert seen["timeseries"] is True
    assert seen["slos"] == () and seen["flight"] is False


def test_incident_bundles_land_under_out_dir(tmp_path, monkeypatch):
    from repro.__main__ import main
    from repro.faults import CrashThread, FaultPlan
    import repro.experiments.registry as registry

    def crashy(quick=True, jobs=None):
        from repro.analysis.series import FigureData
        plan = FaultPlan(seed=1, faults=(
            CrashThread(tid=3, at_cycle=SPEC.warmup_cycles + 2_000),))
        fig = FigureData("crashy", "crashy", "threads", "Mops/s")
        fig.add_point("mp-server", 5.0,
                      run_counter_benchmark("mp-server", 5, spec=SPEC,
                                            fault_plan=plan))
        return fig

    monkeypatch.setitem(registry.EXPERIMENTS, "crashy", crashy)
    out = tmp_path / "r3"
    assert main(["report", "crashy", "--out", str(out)]) == 0
    bundles = list((out / "incidents" / "crashy").glob("incident-*.json"))
    assert bundles
    with open(bundles[0]) as f:
        assert json.load(f)["format"] == 1
