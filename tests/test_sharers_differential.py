"""Differential tests: sparse directory structures vs frozen dense references.

Two layers, matching how the sparse directory could break:

1. **Structure level** -- :class:`repro.mem.sharers.SparseSharerSet`
   against a plain-``set`` reference model under randomized
   add/discard/clear/iterate/query sequences (Hypothesis, 200+ examples
   per property).  The reference computes farthest-sharer hops by brute
   force from raw (x, y) coordinates, independent of the corner
   decomposition under test.
2. **Machine level** -- two identical machines run the same randomized
   coherence trace, one with the production ``SparseSharerSet`` and one
   with a dense drop-in built on a plain ``set``.  Simulated time, every
   memory value, every per-core access counter, every core's cached
   state and the full directory content must come out identical: the
   sparse representation is a pure data-structure swap with zero effect
   on simulated behaviour.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, mesh_profile, tile_gx
from repro.mem.sharers import FEW_MAX, MeshGeometry, SparseSharerSet

# -- structure-level reference model ---------------------------------------


def _identity_geo(width: int, height: int) -> MeshGeometry:
    n = width * height
    return MeshGeometry(width, list(range(n)), n)


class DenseModel:
    """Frozen reference: plain set + brute-force Manhattan geometry."""

    def __init__(self, width: int):
        self.width = width
        self.s = set()

    def add(self, cid):
        self.s.add(cid)

    def discard(self, cid):
        self.s.discard(cid)

    def clear(self):
        self.s.clear()

    def others(self, cid):
        return bool(self.s - {cid})

    def farthest_hop(self, home_node, exclude=-1):
        cand = [c for c in self.s if c != exclude]
        if not cand:
            raise ValueError("empty")
        hx, hy = home_node % self.width, home_node // self.width
        return max(abs(c % self.width - hx) + abs(c // self.width - hy)
                   for c in cand)


def _assert_same_observable(sp, ref, width, height):
    assert len(sp) == len(ref.s)
    assert bool(sp) == bool(ref.s)
    assert list(sp) == sorted(ref.s)          # ascending in both modes
    assert sp == ref.s                        # __eq__ vs plain set
    probe = sorted(ref.s)[:3] + [0, width * height - 1]
    for cid in probe:
        assert (cid in sp) == (cid in ref.s)
        assert sp.others(cid) == ref.others(cid)


_MESH = st.sampled_from([(2, 2), (4, 4), (6, 6), (8, 3), (16, 16), (32, 32)])


@st.composite
def _trace(draw):
    width, height = draw(_MESH)
    n = width * height
    cids = st.integers(0, n - 1)
    op = st.one_of(
        st.tuples(st.just("add"), cids),
        st.tuples(st.just("discard"), cids),
        st.tuples(st.just("clear"), st.just(0)),
        # (home node, exclude cid) geometry probe; exclude == -1 means
        # no exclusion, matching the protocol's default
        st.tuples(st.just("farthest"), st.tuples(
            cids, st.one_of(st.just(-1), cids))),
    )
    return width, height, draw(st.lists(op, min_size=1, max_size=60))


@settings(max_examples=200, deadline=None)
@given(_trace())
def test_sparse_sharers_match_dense_model(trace):
    width, height, ops = trace
    sp = SparseSharerSet(_identity_geo(width, height))
    ref = DenseModel(width)
    for kind, arg in ops:
        if kind == "add":
            sp.add(arg)
            ref.add(arg)
        elif kind == "discard":
            sp.discard(arg)
            ref.discard(arg)
        elif kind == "clear":
            sp.clear()
            ref.clear()
        else:
            home, exclude = arg
            if ref.others(exclude):
                assert sp.farthest_hop(home, exclude) == \
                    ref.farthest_hop(home, exclude)
        _assert_same_observable(sp, ref, width, height)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(0, 35), min_size=FEW_MAX + 1, max_size=40,
                unique=True),
       st.integers(0, 35), st.integers(-1, 35))
def test_bitmap_conversion_is_invisible(members, home, exclude):
    """Crossing FEW_MAX (list -> bitmap) must not change any observable."""
    sp = SparseSharerSet(_identity_geo(6, 6))
    ref = DenseModel(6)
    for cid in members:
        sp.add(cid)
        ref.add(cid)
        sp.add(cid)                 # idempotent in both modes
    assert sp._few is None          # really converted
    _assert_same_observable(sp, ref, 6, 6)
    if ref.others(exclude):
        assert sp.farthest_hop(home, exclude) == ref.farthest_hop(home, exclude)
    # discarding back below FEW_MAX stays in bitmap mode but must still
    # agree (the dirty-aggregate rebuild path)
    for cid in members[:FEW_MAX]:
        sp.discard(cid)
        ref.discard(cid)
        _assert_same_observable(sp, ref, 6, 6)
        if ref.others(exclude):
            assert sp.farthest_hop(home, exclude) == \
                ref.farthest_hop(home, exclude)


def test_sharers_long_random_walk():
    """Seeded long-run soak across mesh sizes (non-hypothesis): exercises
    many dirty-rebuild cycles and the protocol's exact call pattern
    (add / clear / others / farthest with the requester excluded)."""
    for seed, (width, height) in enumerate([(6, 6), (16, 16), (32, 32)]):
        rng = random.Random(seed)
        n = width * height
        sp = SparseSharerSet(_identity_geo(width, height))
        ref = DenseModel(width)
        for _ in range(2_000):
            r = rng.random()
            cid = rng.randrange(n)
            if r < 0.5:
                sp.add(cid)
                ref.add(cid)
            elif r < 0.7:
                sp.discard(cid)
                ref.discard(cid)
            elif r < 0.75:
                sp.clear()
                ref.clear()
            else:
                home = rng.randrange(n)
                if ref.others(cid):
                    assert sp.farthest_hop(home, exclude=cid) == \
                        ref.farthest_hop(home, exclude=cid)
            assert len(sp) == len(ref.s)
        _assert_same_observable(sp, ref, width, height)


# -- machine-level differential trace harness ------------------------------


class DenseSharerSet:
    """Dense drop-in for the directory: the pre-refactor representation
    (a plain set per line), wrapped in the SparseSharerSet API."""

    def __init__(self, geo: MeshGeometry):
        self._geo = geo
        self._s = set()

    def __len__(self):
        return len(self._s)

    def __bool__(self):
        return bool(self._s)

    def __contains__(self, cid):
        return cid in self._s

    def __iter__(self):
        return iter(sorted(self._s))

    def add(self, cid):
        self._s.add(cid)

    def discard(self, cid):
        self._s.discard(cid)

    def clear(self):
        self._s.clear()

    def others(self, cid):
        return bool(self._s - {cid})

    def farthest_hop(self, home_node, exclude=-1):
        geo = self._geo
        hu, hv = geo.node_u[home_node], geo.node_v[home_node]
        best = None
        for c in self._s:
            if c == exclude:
                continue
            d = max(geo.core_u[c] - hu, hu - geo.core_u[c],
                    geo.core_v[c] - hv, hv - geo.core_v[c])
            if best is None or d > best:
                best = d
        if best is None:
            raise ValueError("empty")
        return best

    def nominal_bytes(self):
        return 8 * len(self._s)


def _coherence_trace(cfg, nthreads, naddrs, ops_each, seed):
    """Run one randomized load/store/faa/cas trace; return the full
    observable state (simulated time, values, counters, directory)."""
    machine = Machine(cfg)
    addrs = [machine.mem.alloc(1, isolated=True) for _ in range(naddrs)]
    results = []

    def script(ctx, rng):
        def prog(ctx=ctx, rng=rng):
            for _ in range(ops_each):
                a = addrs[rng.randrange(naddrs)]
                r = rng.random()
                if r < 0.4:
                    v = yield from ctx.load(a)
                    results.append(("ld", ctx.tid, v))
                elif r < 0.7:
                    yield from ctx.store(a, rng.randrange(100))
                elif r < 0.9:
                    v = yield from ctx.faa(a, 1)
                    results.append(("faa", ctx.tid, v))
                else:
                    ok = yield from ctx.cas(a, 0, rng.randrange(100))
                    results.append(("cas", ctx.tid, ok))
                yield from ctx.work(rng.randrange(0, 40))
        return prog()

    # spread across the mesh: long NoC paths make the farthest-sharer
    # arithmetic matter
    stride = max(1, machine.cfg.num_cores // nthreads)
    ctxs = [machine.thread(t, core_id=(t * stride) % machine.cfg.num_cores)
            for t in range(nthreads)]
    for t, ctx in enumerate(ctxs):
        machine.spawn(ctx, script(ctx, random.Random(seed * 1009 + t)))
    machine.run()

    directory = {
        line: (entry.owner, frozenset(entry.sharers))
        for line, entry in machine.mem._lines.items()
    }
    cached = {(c.cid, a): machine.mem.cached_state(c.cid, a)
              for c in machine.cores[:machine.cfg.num_cores] for a in addrs}
    return {
        "now": machine.now,
        "events": machine.sim.events_processed,
        "values": [machine.mem.peek(a) for a in addrs],
        "results": results,
        "loads": [c.loads for c in machine.cores],
        "stalls": [c.stall_mem for c in machine.cores],
        "directory": directory,
        "cached": cached,
    }


def test_directory_differential_dense_vs_sparse(monkeypatch):
    """Identical randomized coherence traces under the sparse directory
    and the dense reference must produce identical observables -- on the
    paper's 6x6 and on a 16x16 big mesh."""
    import repro.mem.cache as cache_mod

    for cfg_fn in (tile_gx, lambda: mesh_profile(16, 16)):
        for seed in range(4):
            sparse = _coherence_trace(cfg_fn(), nthreads=6, naddrs=5,
                                      ops_each=30, seed=seed)
            monkeypatch.setattr(cache_mod, "SparseSharerSet", DenseSharerSet)
            try:
                dense = _coherence_trace(cfg_fn(), nthreads=6, naddrs=5,
                                         ops_each=30, seed=seed)
            finally:
                monkeypatch.setattr(cache_mod, "SparseSharerSet",
                                    SparseSharerSet)
            assert sparse == dense


def test_directory_differential_cache_atomics(monkeypatch):
    """Same differential on the x86-like profile, where atomics execute
    at the cache (CacheAtomics) instead of the memory controller --
    tile-gx above covers the controller path and the ``invalidate_all``
    entry reclamation behind it; this covers the other rmw pipeline."""
    import repro.mem.cache as cache_mod
    from repro.machine import x86_like

    for seed in range(3):
        sparse = _coherence_trace(x86_like(), nthreads=5, naddrs=4,
                                  ops_each=25, seed=seed)
        monkeypatch.setattr(cache_mod, "SparseSharerSet", DenseSharerSet)
        try:
            dense = _coherence_trace(x86_like(), nthreads=5, naddrs=4,
                                     ops_each=25, seed=seed)
        finally:
            monkeypatch.setattr(cache_mod, "SparseSharerSet", SparseSharerSet)
        assert sparse == dense
