"""Tests for machine configuration, profiles, and assembly."""

import pytest

from repro.machine import Machine, tile_gx, x86_like


# -- config validation --------------------------------------------------------

def test_tile_gx_defaults():
    cfg = tile_gx()
    assert cfg.num_cores == 36
    assert cfg.clock_mhz == 1200
    assert cfg.has_udn
    assert cfg.atomic_at == "controller"
    assert len(cfg.memory_controller_nodes) == 2
    assert cfg.udn_buffer_words == 118
    assert cfg.udn_demux_queues == 4


def test_x86_profile():
    cfg = x86_like()
    assert not cfg.has_udn
    assert cfg.atomic_at == "cache"
    assert cfg.clock_mhz > tile_gx().clock_mhz
    assert cfg.c_remote_base > tile_gx().c_remote_base


def test_overrides_via_factories():
    cfg = tile_gx(mesh_width=4, mesh_height=4, memory_controller_nodes=(0, 15))
    assert cfg.num_cores == 16


def test_with_overrides_returns_validated_copy():
    cfg = tile_gx()
    cfg2 = cfg.with_overrides(clock_mhz=1000)
    assert cfg2.clock_mhz == 1000
    assert cfg.clock_mhz == 1200


@pytest.mark.parametrize("bad", [
    dict(mesh_width=0),
    dict(memory_controller_nodes=(99,)),
    dict(memory_controller_nodes=()),
    dict(atomic_at="nowhere"),
    dict(line_words=0),
    dict(udn_demux_queues=0),
])
def test_invalid_configs_rejected(bad):
    with pytest.raises(ValueError):
        tile_gx(**bad)


def test_mops_conversion():
    cfg = tile_gx()
    # 1200 ops in 1200 cycles at 1200 MHz = 1200 Mops/s
    assert cfg.mops(1200, 1200) == pytest.approx(1200.0)
    assert cfg.mops(10, 0) == 0.0


# -- machine assembly -----------------------------------------------------------

def test_machine_has_all_subsystems():
    m = Machine(tile_gx())
    assert len(m.cores) == 36
    assert m.udn is not None
    assert m.mem.atomics is not None
    assert m.contended_mesh is None


def test_contended_machine():
    m = Machine(tile_gx(contended_noc=True))
    assert m.contended_mesh is not None


def test_x86_machine_has_no_udn():
    m = Machine(x86_like())
    assert m.udn is None


def test_thread_placement_defaults_to_tid():
    m = Machine(tile_gx())
    ctx = m.thread(7)
    assert ctx.core.cid == 7


def test_thread_errors():
    m = Machine(tile_gx())
    m.thread(0)
    with pytest.raises(ValueError, match="already exists"):
        m.thread(0)
    with pytest.raises(ValueError, match="out of range"):
        m.thread(1, core_id=99)


def test_work_accumulates_busy():
    m = Machine(tile_gx())
    ctx = m.thread(0)

    def prog():
        yield from ctx.work(25)
        yield from ctx.work(0)  # no-op
        return ctx.core.busy

    p = m.spawn(ctx, prog())
    m.run()
    assert p.result == 25
    assert m.now == 25


def test_core_snapshot_delta():
    m = Machine(tile_gx())
    ctx = m.thread(0)

    def prog():
        yield from ctx.work(10)
        snap = ctx.core.snapshot()
        yield from ctx.work(5)
        return ctx.core.delta(snap)

    p = m.spawn(ctx, prog())
    m.run()
    assert p.result["busy"] == 5
    assert p.result["stall_mem"] == 0


def test_max_events_guard_on_machine():
    m = Machine(tile_gx(), max_events=100)
    ctx = m.thread(0)

    def spin():
        while True:
            yield 1

    m.spawn(ctx, spin())
    with pytest.raises(RuntimeError, match="exceeded"):
        m.run()
