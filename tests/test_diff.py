"""Cross-run differential analysis: repro.analysis.diff + the diff CLI."""

import copy
import json
import math

import pytest

from repro.analysis.diff import (
    blame_metrics,
    diff_records,
    diff_to_json,
    load_record,
    metric_direction,
    record_from_bench,
    record_from_results,
    render_diff_text,
)
from repro.workload.metrics import RunResult


def _series(d, label):
    """Pick one paired-series entry of a diff by its a-side label."""
    return next(s for s in d["series"] if s["a_label"] == label)


def _bench_doc(**tweak):
    doc = {
        "figure": "figX",
        "config_fingerprint": "abc123",
        "full": False,
        "jobs": 1,
        "series": {
            "mp-server": [
                {"x": 1, "threads": 1, "ops": 100, "throughput_mops": 10.0,
                 "latency_p50_cycles": 50.0, "latency_p99_cycles": 90.0},
                {"x": 8, "threads": 8, "ops": 800, "throughput_mops": 80.0,
                 "latency_p50_cycles": 60.0, "latency_p99_cycles": 120.0},
            ],
            "CC-Synch": [
                {"x": 1, "threads": 1, "ops": 90, "throughput_mops": 9.0,
                 "latency_p50_cycles": 55.0, "latency_p99_cycles": 95.0},
            ],
        },
    }
    doc.update(tweak)
    return doc


# -- direction table -------------------------------------------------------

def test_metric_direction_table():
    assert metric_direction("throughput_mops") == 1
    assert metric_direction("goodput_mops") == 1
    assert metric_direction("latency_p99_cycles") == -1
    assert metric_direction("ol.shed_ops") == -1
    assert metric_direction("backpressure_cycles") == -1
    assert metric_direction("threads") == 0
    assert metric_direction("x") == 0
    # unknown / provenance metrics never produce verdicts
    assert metric_direction("ts.core.busy.mean") == 0
    assert metric_direction("blame.queueing") == 0
    assert metric_direction("some.novel.metric") == 0


# -- diffing ---------------------------------------------------------------

def test_self_diff_is_unchanged():
    a = record_from_bench(_bench_doc(), label="a")
    b = record_from_bench(_bench_doc(), label="b")
    d = diff_records(a, b)
    assert d["verdict"] == "unchanged"
    assert d["comparable"]
    assert d["counts"]["regressed"] == 0 and d["counts"]["improved"] == 0


def test_perturbed_throughput_flags_regressed():
    doc = _bench_doc()
    doc["series"]["mp-server"][1]["throughput_mops"] = 40.0  # -50%
    a = record_from_bench(_bench_doc(), label="base")
    b = record_from_bench(doc, label="cand")
    d = diff_records(a, b)
    assert d["verdict"] == "regressed"
    pt = _series(d, "mp-server")["points"][1]
    m = pt["metrics"]["throughput_mops"]
    assert m["verdict"] == "regressed"
    assert m["delta"] == pytest.approx(-0.5)
    assert pt["verdict"] == "regressed"


def test_latency_drop_is_an_improvement():
    doc = _bench_doc()
    doc["series"]["mp-server"][0]["latency_p99_cycles"] = 45.0  # -50%
    d = diff_records(record_from_bench(_bench_doc(), label="a"),
                     record_from_bench(doc, label="b"))
    assert d["verdict"] == "improved"


def test_threshold_absorbs_small_moves():
    doc = _bench_doc()
    doc["series"]["mp-server"][0]["throughput_mops"] *= 1.04  # within 5%
    d = diff_records(record_from_bench(_bench_doc(), label="a"),
                     record_from_bench(doc, label="b"))
    assert d["verdict"] == "unchanged"
    d = diff_records(record_from_bench(_bench_doc(), label="a"),
                     record_from_bench(doc, label="b"), threshold=0.01)
    assert d["verdict"] == "improved"


def test_gate_collects_failures_and_missing_points():
    doc = _bench_doc()
    doc["series"]["mp-server"][1]["throughput_mops"] = 40.0
    del doc["series"]["CC-Synch"][0]  # x=1 point vanishes
    doc["series"]["CC-Synch"] = []
    d = diff_records(record_from_bench(_bench_doc(), label="a"),
                     record_from_bench(doc, label="b"),
                     gate=("throughput_mops",))
    assert any("throughput_mops" in msg for msg in d["gate_failures"])
    assert any("point disappeared" in msg for msg in d["gate_failures"])
    # without a gate the same diff reports but does not gate-fail
    d2 = diff_records(record_from_bench(_bench_doc(), label="a"),
                      record_from_bench(doc, label="b"))
    assert d2["gate_failures"] == []


def test_single_curves_pair_positionally_across_labels():
    a = record_from_bench(_bench_doc(), label="a", series="mp-server")
    b = record_from_bench(_bench_doc(), label="b", series="CC-Synch")
    d = diff_records(a, b)
    s = d["series"][0]
    assert s["a_label"] == "mp-server" and s["b_label"] == "CC-Synch"
    assert len(s["points"]) == 1  # only x=1 exists on both sides
    assert s["missing_in_b"] == [8]


def test_fingerprint_mismatch_marks_incomparable():
    d = diff_records(
        record_from_bench(_bench_doc(), label="a"),
        record_from_bench(_bench_doc(config_fingerprint="zzz"), label="b"))
    assert not d["comparable"]


def test_record_from_bench_rejects_unknown_series():
    with pytest.raises(KeyError):
        record_from_bench(_bench_doc(), label="a", series="nope")


# -- spatial diff ----------------------------------------------------------

def _spatial(shares):
    links = {k: {"msgs": 1, "words": 1, "busy": 0, "wait": 0,
                 "packets": 0, "share": v} for k, v in shares.items()}
    return {"format": 1, "mesh": {"width": 6, "height": 6},
            "contended": False, "basis": "words", "messages": 1,
            "words": 1, "links": links, "tiles": {}, "series_dropped": 0}


def test_spatial_share_movement_is_reported():
    a = record_from_bench(_bench_doc(), label="a", series="mp-server")
    b = record_from_bench(_bench_doc(), label="b", series="mp-server")
    a["series"]["mp-server"][0]["spatial"] = _spatial(
        {"0>1": 0.8, "1>2": 0.2})
    b["series"]["mp-server"][0]["spatial"] = _spatial(
        {"0>1": 0.2, "1>2": 0.8})
    d = diff_records(a, b)
    sp = d["series"][0]["points"][0]["spatial"]
    assert sp["total_share_moved"] == pytest.approx(0.6)
    movers = {m["link"]: m["move"] for m in sp["top_movers"]}
    assert movers["0>1"] == pytest.approx(-0.6)
    assert movers["1>2"] == pytest.approx(+0.6)


# -- rendering determinism -------------------------------------------------

def test_text_and_json_renders_are_deterministic():
    doc = _bench_doc()
    doc["series"]["mp-server"][1]["throughput_mops"] = 40.0
    a = record_from_bench(_bench_doc(), label="a")
    b = record_from_bench(doc, label="b")
    t1 = render_diff_text(diff_records(a, b))
    t2 = render_diff_text(diff_records(copy.deepcopy(a), copy.deepcopy(b)))
    assert t1 == t2
    j1 = diff_to_json(diff_records(a, b))
    j2 = diff_to_json(diff_records(a, b))
    assert j1 == j2
    json.loads(j1)  # valid JSON
    assert "regressed" in t1


def test_infinite_delta_survives_text_render():
    doc = _bench_doc()
    doc["series"]["mp-server"][0]["ops"] = 0
    d = diff_records(record_from_bench(doc, label="a"),
                     record_from_bench(_bench_doc(), label="b"))
    txt = render_diff_text(d)
    assert "(new)" in txt
    # and the structured form keeps the signed infinity
    m = _series(d, "mp-server")["points"][0]["metrics"]["ops"]
    assert math.isinf(m["delta"])


# -- live results / blame --------------------------------------------------

def _result(ops=1000, lat=50.0):
    r = RunResult(name="mp-server", num_threads=4, ops=ops,
                  window_cycles=10_000, clock_mhz=1200)
    r.mean_latency_cycles = lat
    r.p50_latency_cycles = lat
    r.p95_latency_cycles = lat * 2
    r.p99_latency_cycles = lat * 3
    return r


def test_record_from_results_and_diff():
    a = record_from_results("run-a", [(4, _result(ops=1000))])
    b = record_from_results("run-b", [(4, _result(ops=400))])
    d = diff_records(a, b)
    assert d["verdict"] == "regressed"


def test_blame_metrics_normalizes_per_op():
    class Rep:
        label = "x"
        ops = 10
        blame = {"queueing": 300.0, "service": 500.0}
    m = blame_metrics(Rep())
    assert m == {"blame.queueing": 30.0, "blame.service": 50.0}


# -- load_record / CLI -----------------------------------------------------

def test_load_record_with_series_selector(tmp_path):
    p = tmp_path / "BENCH_x.json"
    p.write_text(json.dumps(_bench_doc()))
    rec = load_record(f"{p}:CC-Synch")
    assert list(rec["series"]) == ["CC-Synch"]
    assert rec["label"].endswith("BENCH_x.json:CC-Synch")
    rec_all = load_record(str(p))
    assert set(rec_all["series"]) == {"mp-server", "CC-Synch"}
    with pytest.raises((KeyError, OSError)):
        load_record(f"{p}:nope")


def test_cli_diff_text_json_and_gate(tmp_path, capsys):
    from repro.__main__ import main

    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(_bench_doc()))
    doc = _bench_doc()
    doc["series"]["mp-server"][1]["throughput_mops"] = 40.0
    cand.write_text(json.dumps(doc))

    assert main(["diff", str(base), str(base)]) == 0
    out = capsys.readouterr().out
    assert "verdict: unchanged" in out

    assert main(["diff", str(base), str(cand)]) == 0  # no gate -> exit 0
    out = capsys.readouterr().out
    assert "regressed" in out

    rc = main(["diff", str(base), str(cand), "--gate", "throughput_mops"])
    assert rc == 1
    assert "gate FAIL" in capsys.readouterr().out

    assert main(["diff", str(base), str(cand), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["verdict"] == "regressed"


def test_cli_diff_writes_html(tmp_path, capsys):
    from repro.__main__ import main

    base = tmp_path / "base.json"
    base.write_text(json.dumps(_bench_doc()))
    html_path = tmp_path / "out" / "diff.html"
    assert main(["diff", str(base), str(base), "--html",
                 str(html_path)]) == 0
    doc = html_path.read_text()
    assert doc.lstrip().startswith("<!DOCTYPE html>")
    assert "verdict: unchanged" in doc


def test_cli_diff_bad_path_exits_2(tmp_path, capsys):
    from repro.__main__ import main

    assert main(["diff", str(tmp_path / "missing.json"),
                 str(tmp_path / "missing.json")]) == 2
    assert "error:" in capsys.readouterr().err
