"""Tests for SLO monitors: burn windows, breach/recover, live wiring."""

import pytest

import repro.obs as obs
from repro.machine import Machine, tile_gx
from repro.obs import SLO
from repro.workload import WorkloadSpec
from repro.workload.scenarios import run_counter_benchmark


def _machine_with(slos, **kw):
    with obs.observed(slos=slos, **kw) as session:
        m = Machine(tile_gx())
    return m, session.machines[0]


def _tick(ob, at):
    ob.machine.sim.now = at  # drive windows by hand
    ob.slo.on_tick(at)


def _end_op(ob, t, start):
    ob.bus.sim.now = t
    ob.bus.emit("op.end", core=0, tid=0, op=0, start=start, measured=True)


# -- validation ------------------------------------------------------------

def test_slo_validation():
    with pytest.raises(ValueError):
        SLO("x", kind="availability", target=1.0)
    with pytest.raises(ValueError):
        SLO("x", kind="latency", target=1.0, quantile=0.0)
    with pytest.raises(ValueError):
        SLO("x", kind="latency", target=1.0, budget=0.0)
    with pytest.raises(ValueError):
        SLO("x", kind="latency", target=1.0, burn_threshold=0.5)
    with pytest.raises(ValueError):
        SLO("x", kind="latency", target=1.0, short_ticks=5, long_ticks=3)


def test_duplicate_slo_names_rejected():
    s = SLO("same", kind="latency", target=1.0)
    with pytest.raises(ValueError):
        _machine_with((s, s))


# -- burn-rate mechanics ---------------------------------------------------

def test_bad_window_breaches_and_publishes_bus_event():
    slo = SLO("lat", kind="latency", target=100.0, budget=0.5,
              burn_threshold=2.0, short_ticks=2, long_ticks=4)
    _m, ob = _machine_with((slo,))
    events = []
    ob.bus.subscribe(lambda t, k, f: events.append((t, k, f))
                     if k.startswith("slo.") else None)
    # one all-bad window: burn = 1 / 0.5 = 2.0 in both windows
    _end_op(ob, 200, 0)      # sojourn 200 > target
    _tick(ob, 512)
    assert ob.slo.breaches == 1
    assert len(events) == 1
    t, k, f = events[0]
    assert (t, k) == (512, "slo.breach")
    assert f["slo"] == "lat" and f["objective"] == "latency"
    assert f["burn_short"] == pytest.approx(2.0)
    # still breached, not re-paged, on the next bad window
    _end_op(ob, 900, 0)
    _tick(ob, 1024)
    assert ob.slo.breaches == 1 and len(events) == 1


def test_one_bad_blip_does_not_page():
    # budget 0.1, short 5: one bad window in five -> burn 2.0; long 20:
    # one bad in twenty -> burn 0.5 < 1.0 -- no alert (the long window
    # is the blip filter)
    slo = SLO("lat", kind="latency", target=100.0, budget=0.1,
              burn_threshold=2.0, short_ticks=5, long_ticks=20)
    _m, ob = _machine_with((slo,))
    t = 0
    for i in range(19):
        t += 512
        _end_op(ob, t, t - 10)     # good windows
        _tick(ob, t)
    t += 512
    _end_op(ob, t, t - 500)        # one bad blip
    _tick(ob, t)
    assert ob.slo.breaches == 0
    st = ob.slo.summary()[0]
    assert st["burn_short"] == pytest.approx(1 / 5 / 0.1)  # = 2.0
    assert st["burn_long"] == pytest.approx(1 / 20 / 0.1)  # = 0.5


def test_breach_then_recover_emits_both():
    slo = SLO("lat", kind="latency", target=100.0, budget=0.5,
              burn_threshold=1.0, short_ticks=2, long_ticks=2)
    _m, ob = _machine_with((slo,))
    kinds = []
    ob.bus.subscribe(lambda t, k, f: kinds.append(k)
                     if k.startswith("slo.") else None)
    t = 0
    for _ in range(2):              # two bad windows -> breach
        t += 512
        _end_op(ob, t, t - 500)
        _tick(ob, t)
    assert kinds == ["slo.breach"]
    assert ob.slo.summary()[0]["breached"] is True
    for _ in range(2):              # two good windows -> burn 0 -> recover
        t += 512
        _end_op(ob, t, t - 10)
        _tick(ob, t)
    assert kinds == ["slo.breach", "slo.recover"]
    assert ob.slo.summary()[0]["breached"] is False
    assert [w for _c, w, _n in ob.slo.events] == ["breach", "recover"]


def test_latency_quantile_selects_tail():
    # p50 of [10, 10, 10, 1000] is fine; p99 is not
    lo = SLO("p50", kind="latency", target=100.0, quantile=0.5,
             budget=1.0, burn_threshold=1.0, short_ticks=1, long_ticks=1)
    hi = SLO("p99", kind="latency", target=100.0, quantile=0.99,
             budget=1.0, burn_threshold=1.0, short_ticks=1, long_ticks=1)
    _m, ob = _machine_with((lo, hi))
    t = 512
    for lat in (10, 10, 10, 1000):
        _end_op(ob, t, t - lat)
    _tick(ob, t)
    by_name = {s["name"]: s for s in ob.slo.summary()}
    assert by_name["p50"]["breaches"] == 0
    assert by_name["p99"]["breaches"] == 1


def test_goodput_waits_for_first_op():
    slo = SLO("gp", kind="goodput", target=1.0, budget=1.0,
              burn_threshold=1.0, short_ticks=1, long_ticks=1)
    _m, ob = _machine_with((slo,))
    # windows close before the workload has completed anything: no data,
    # no spurious page
    _tick(ob, 512)
    _tick(ob, 1024)
    assert ob.slo.breaches == 0
    assert ob.slo.summary()[0]["last_value"] is None
    # once ops flow, an idle window becomes a genuine goodput breach
    _end_op(ob, 1500, 1490)
    _tick(ob, 1536)          # window with 1 op: fine at this clock
    _tick(ob, 2048)          # window with 0 ops: goodput 0 < floor
    assert ob.slo.breaches == 1


def test_qdepth_reads_sampled_gauge():
    slo = SLO("q", kind="qdepth", target=4.0, metric="admit.qdepth",
              budget=1.0, burn_threshold=1.0, short_ticks=1, long_ticks=1)
    _m, ob = _machine_with((slo,), timeseries=True)
    depth = {"v": 0.0}
    ob.sampler.register("admit.qdepth", lambda: depth["v"], kind="gauge",
                        replace=True)
    _tick_all = ob.sampler.on_tick
    depth["v"] = 2.0
    ob.machine.sim.now = 512
    _tick_all(512)
    assert ob.slo.breaches == 0
    depth["v"] = 9.0
    ob.machine.sim.now = 1024
    _tick_all(1024)
    assert ob.slo.breaches == 1
    # the burn series rode along for the dashboard
    assert ob.sampler.series["slo.q.burn"].samples == 2


# -- live end-to-end -------------------------------------------------------

def test_healthy_run_does_not_breach_loose_slo():
    spec = WorkloadSpec(warmup_cycles=5_000, measure_cycles=30_000)
    slos = (SLO("p99", kind="latency", target=1e9),
            SLO("gp", kind="goodput", target=1e-9))
    with obs.observed(slos=slos) as session:
        run_counter_benchmark("mp-server", 6, spec=spec)
    assert session.breaches() == 0


def test_impossible_slo_breaches_on_live_run():
    spec = WorkloadSpec(warmup_cycles=5_000, measure_cycles=30_000)
    slos = (SLO("p99", kind="latency", target=1.0),)  # nothing is <= 1 cyc
    with obs.observed(slos=slos) as session:
        run_counter_benchmark("mp-server", 6, spec=spec)
        ob = session.machines[0]
    assert session.breaches() >= 1
    assert ob.slo.summary()[0]["breaches"] >= 1
    assert any(w == "breach" for _c, w, _n in ob.slo.events)
    # the burn time series rode along for the dashboard burn chart
    assert ob.sampler.series["slo.p99.burn"].samples > 0
