"""Property-based tests (hypothesis) on the core invariants.

These complement the example-based tests with randomized exploration:
mutual exclusion and linearizability of every approach under arbitrary
schedules, FIFO/conservation of the UDN, coherence invariants under
random operation streams, and determinism of the whole stack.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CCSynch, HybComb, MPServer, OpTable
from repro.machine import Machine, tile_gx
from tests.helpers import build

SETTINGS = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def counter_workloads(draw):
    approach = draw(st.sampled_from(["mp-server", "HybComb", "shm-server", "CC-Synch"]))
    num_clients = draw(st.integers(1, 10))
    ops_each = draw(st.integers(1, 25))
    max_ops = draw(st.sampled_from([1, 3, 50, 200]))
    seed = draw(st.integers(0, 2**31))
    return approach, num_clients, ops_each, max_ops, seed


@given(counter_workloads())
@settings(**SETTINGS)
def test_any_approach_any_schedule_is_linearizable(params):
    """Fetch-and-increment tickets are a permutation of 0..N-1 for every
    approach, client count, MAX_OPS and random think schedule."""
    approach, num_clients, ops_each, max_ops, seed = params
    machine, prim, addr, opcode, ctxs = build(approach, num_clients,
                                              max_ops=max_ops)
    rng = np.random.default_rng(seed)
    tickets = []
    procs = []

    def client(ctx, thinks):
        for k in range(ops_each):
            t = yield from prim.apply_op(ctx, opcode, 0)
            tickets.append(t)
            yield from ctx.work(int(thinks[k]))

    for ctx in ctxs:
        procs.append(machine.spawn(ctx, client(ctx, rng.integers(0, 120, ops_each))))

    def coordinator():
        for p in procs:
            yield from p.join()
        if hasattr(prim, "stop"):
            prim.stop()

    machine.sim.spawn(coordinator())
    machine.run()
    total = num_clients * ops_each
    assert sorted(tickets) == list(range(total))
    assert machine.mem.peek(addr) == total


@given(
    st.lists(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=4),
             min_size=1, max_size=30),
    st.integers(0, 3),
)
@settings(**SETTINGS)
def test_udn_fifo_and_conservation(messages, demux):
    """All words sent from one thread to another arrive exactly once and
    in order, whatever the message sizes and timing."""
    m = Machine(tile_gx())
    sender = m.thread(0, core_id=0)
    receiver = m.thread(1, core_id=1, demux=demux)
    got = []

    def send_all(ctx):
        for i, msg in enumerate(messages):
            yield from ctx.send(1, msg)
            yield from ctx.work(i % 7)

    def recv_all(ctx):
        total = sum(len(msg) for msg in messages)
        while len(got) < total:
            w = yield from ctx.receive(1)
            got.extend(w)

    m.spawn(sender, send_all(sender))
    m.spawn(receiver, recv_all(receiver))
    m.run()
    expected = [w & ((1 << 64) - 1) for msg in messages for w in msg]
    assert got == expected


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.sampled_from(["load", "store", "faa", "cas", "swap"]),
                  st.integers(0, 15), st.integers(0, 50)),
        min_size=1, max_size=80,
    )
)
@settings(**SETTINGS)
def test_coherence_swmr_under_random_op_streams(ops):
    """Random mixes of memory operations from six cores never violate
    the single-writer/multiple-reader invariant, and the final memory
    state matches a sequential replay of the simulator's own commit
    order (values are linearizable)."""
    m = Machine(tile_gx(debug_checks=True))
    base = m.mem.alloc(16, isolated=True)
    per_core = {}
    for cid, kind, off, delay in ops:
        per_core.setdefault(cid, []).append((kind, off, delay))

    def prog(ctx, plan):
        for kind, off, delay in plan:
            a = base + off
            if kind == "load":
                yield from ctx.load(a)
            elif kind == "store":
                yield from ctx.store(a, ctx.tid * 100 + off)
            elif kind == "faa":
                yield from ctx.faa(a, 1)
            elif kind == "swap":
                yield from ctx.swap(a, ctx.tid)
            else:
                old = yield from ctx.load(a)
                yield from ctx.cas(a, old, old + 1)
            if delay:
                yield from ctx.work(delay)

    for cid, plan in per_core.items():
        ctx = m.thread(cid)
        m.spawn(ctx, prog(ctx, plan))
    m.run()
    m.mem.check_all_swmr()


@given(st.integers(0, 2**31), st.integers(2, 8))
@settings(**SETTINGS)
def test_simulation_is_deterministic(seed, nthreads):
    """Two identical runs produce byte-identical counter histories."""

    def run():
        m = Machine(tile_gx())
        table = OpTable()
        a = m.mem.alloc(1)

        def body(ctx, arg):
            v = yield from ctx.load(a)
            yield from ctx.store(a, v + 1)
            return v

        opcode = table.register(body)
        prim = MPServer(m, table, server_tid=0)
        prim.start()
        rng = np.random.default_rng(seed)
        trace = []

        def client(ctx, thinks):
            for k in range(10):
                v = yield from prim.apply_op(ctx, opcode, 0)
                trace.append((m.now, ctx.tid, v))
                yield from ctx.work(int(thinks[k]))

        for t in range(1, nthreads + 1):
            ctx = m.thread(t)
            m.spawn(ctx, client(ctx, rng.integers(0, 100, 10)))
        m.run()
        return trace, m.now, m.sim.events_processed

    assert run() == run()


@given(st.lists(st.integers(0, 2**31 - 2), min_size=1, max_size=40),
       st.sampled_from([4, 8, 64]))
@settings(**SETTINGS)
def test_lcrq_single_thread_is_fifo_for_any_values(values, ring_size):
    from repro.objects import EMPTY, LCRQ

    m = Machine(tile_gx())
    q = LCRQ(m, ring_size=ring_size)
    ctx = m.thread(0)
    out = []

    def prog():
        for v in values:
            yield from q.enqueue(ctx, v)
        while True:
            v = yield from q.dequeue(ctx)
            if v == EMPTY:
                return
            out.append(v)

    m.spawn(ctx, prog())
    m.run()
    assert out == values


@given(st.data())
@settings(**SETTINGS)
def test_mutual_exclusion_never_violated(data):
    """An in-CS overlap detector across random lock-ish configurations."""
    approach = data.draw(st.sampled_from(["mp-server", "HybComb", "CC-Synch"]))
    nthreads = data.draw(st.integers(2, 8))
    machine = Machine(tile_gx())
    table = OpTable()
    depth = {"n": 0, "max": 0}

    def body(ctx, arg):
        depth["n"] += 1
        depth["max"] = max(depth["max"], depth["n"])
        yield from ctx.work(3)
        depth["n"] -= 1
        return 0

    opcode = table.register(body)
    if approach == "mp-server":
        prim = MPServer(machine, table, server_tid=0)
        tids = range(1, nthreads + 1)
    elif approach == "HybComb":
        prim = HybComb(machine, table, max_ops=data.draw(st.sampled_from([1, 2, 200])))
        tids = range(nthreads)
    else:
        prim = CCSynch(machine, table, max_ops=data.draw(st.sampled_from([1, 2, 200])))
        tids = range(nthreads)
    prim.start()

    def client(ctx):
        for _ in range(12):
            yield from prim.apply_op(ctx, opcode, 0)
            yield from ctx.work(ctx.tid * 3 % 17)

    for t in tids:
        ctx = machine.thread(t)
        machine.spawn(ctx, client(ctx))
    machine.run()
    assert depth["max"] == 1
