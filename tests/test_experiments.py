"""Smoke + shape tests of the experiment modules (tiny sweeps).

The full shape battery lives in benchmarks/; here each experiment runs
with a minimal parameterization so the whole registry stays exercised in
the unit-test suite.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.fig3 import run_fig3a_3b, run_fig3c
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4c
from repro.experiments.fig5 import run_fig5a, run_fig5b
from repro.experiments.registry import main, metric_for


def test_registry_is_complete():
    assert set(EXPERIMENTS) == {
        "fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig4c",
        "fig5a", "fig5b",
        "disc-x86", "disc-scc", "disc-oversub", "disc-backpressure", "disc-noc",
        "disc-faults", "overload", "scale", "scale-smoke",
    }


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("fig99")


def test_fig3a_3b_small():
    fig_a, fig_b = run_fig3a_3b(quick=True, threads=(2, 6),
                                approaches=("mp-server", "CC-Synch"))
    assert set(fig_a.series) == {"mp-server", "CC-Synch"}
    assert fig_a.series["mp-server"].xs() == [2, 6]
    # same runs feed both figures
    assert fig_b.series["mp-server"].points[0][1] is fig_a.series["mp-server"].points[0][1]
    for _x, r in fig_a.series["mp-server"].points:
        assert r.throughput_mops > 0


def test_fig3c_small():
    fig = run_fig3c(quick=True, max_ops_values=(1, 100), num_threads=8)
    assert fig.series["HybComb"].xs() == [1, 100]
    assert fig.series["HybComb"].y_at(100, lambda r: r.throughput_mops) > \
           fig.series["HybComb"].y_at(1, lambda r: r.throughput_mops)


def test_fig4a_small():
    fig = run_fig4a(quick=True, num_threads=8)
    assert len(fig.series) == 4
    (_x, r), = fig.series["mp-server"].points
    assert r.service_stall_per_op <= 1.0
    (_x, r), = fig.series["shm-server"].points
    assert r.service_stall_per_op > 5


def test_fig4b_small():
    fig = run_fig4b(quick=True, threads=(4, 8))
    assert set(fig.series) == {"HybComb", "CC-Synch"}
    for s in fig.series.values():
        for _x, r in s.points:
            assert (r.combining_rate or 0) >= 1


def test_fig4c_small():
    fig = run_fig4c(quick=True, iterations=(0, 6), num_threads=8)
    ideal = fig.series["ideal"]
    cpo = lambda r: r.cycles_per_op
    assert ideal.y_at(6, cpo) > ideal.y_at(0, cpo)
    for label in ("mp-server", "shm-server"):
        s = fig.series[label]
        for k in (0, 6):
            assert s.y_at(k, cpo) > ideal.y_at(k, cpo) * 0.98


def test_fig5a_small():
    fig = run_fig5a(quick=True, clients=(4,), impls=("mp-server-1", "LCRQ"))
    assert set(fig.series) == {"mp-server-1", "LCRQ"}


def test_fig5b_small():
    fig = run_fig5b(quick=True, clients=(4,), impls=("mp-server", "Treiber"))
    assert set(fig.series) == {"mp-server", "Treiber"}


def test_metric_selection():
    assert metric_for("fig3b").__name__ == "<lambda>"
    r_like = type("R", (), {"throughput_mops": 5.0, "mean_latency_cycles": 7.0,
                            "combining_rate": 3.0, "cycles_per_op": 11.0})()
    assert metric_for("fig3a")(r_like) == 5.0
    assert metric_for("fig3b")(r_like) == 7.0
    assert metric_for("fig4b")(r_like) == 3.0
    assert metric_for("fig4c")(r_like) == 11.0


def test_cli_runs_one_experiment_and_exports_csv(tmp_path, capsys):
    rc = main(["fig4a", "--csv", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig4a" in out
    csv = (tmp_path / "fig4a.csv").read_text()
    assert csv.startswith("series,x,")
    assert "mp-server" in csv


def test_cli_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["nonsense"])
    assert "unknown experiment" in capsys.readouterr().err
