"""Tests for the Wing&Gong linearizability checker, plus end-to-end
checks: real concurrent histories recorded from the simulated objects
must verify, and known-bad histories must be rejected."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.linearizability import (
    EMPTY,
    CounterSpec,
    History,
    Operation,
    QueueSpec,
    StackSpec,
    check_linearizable,
)
from repro.core import MPServer, OpTable
from repro.machine import Machine, tile_gx
from repro.objects import LockedStack, OneLockMSQueue, TreiberStack
from tests.helpers import record_counter_history


def H(*ops):
    h = History()
    for tid, op, arg, ret, t0, t1 in ops:
        h.record(tid, op, arg, ret, t0, t1)
    return h


# -- checker unit tests -------------------------------------------------------

def test_empty_history_is_linearizable():
    assert check_linearizable(History(), CounterSpec())


def test_sequential_counter_ok():
    h = H((0, "inc", None, 0, 0, 1), (0, "inc", None, 1, 2, 3))
    assert check_linearizable(h, CounterSpec())


def test_counter_duplicate_ticket_rejected():
    h = H((0, "inc", None, 0, 0, 10), (1, "inc", None, 0, 0, 10))
    assert not check_linearizable(h, CounterSpec())


def test_counter_stale_read_rejected():
    """A read of 0 strictly after an inc returning 0 completed is stale."""
    h = H((0, "inc", None, 0, 0, 1), (1, "read", None, 0, 5, 6))
    assert not check_linearizable(h, CounterSpec())


def test_counter_concurrent_read_may_see_either():
    h = H((0, "inc", None, 0, 0, 10), (1, "read", None, 0, 0, 10))
    assert check_linearizable(h, CounterSpec())
    h2 = H((0, "inc", None, 0, 0, 10), (1, "read", None, 1, 0, 10))
    assert check_linearizable(h2, CounterSpec())


def test_queue_fifo_ok_and_violation():
    ok = H((0, "enq", 1, None, 0, 1), (0, "enq", 2, None, 2, 3),
           (1, "deq", None, 1, 4, 5), (1, "deq", None, 2, 6, 7))
    assert check_linearizable(ok, QueueSpec())
    bad = H((0, "enq", 1, None, 0, 1), (0, "enq", 2, None, 2, 3),
            (1, "deq", None, 2, 4, 5), (1, "deq", None, 1, 6, 7))
    assert not check_linearizable(bad, QueueSpec())


def test_queue_concurrent_enqueues_commute():
    h = H((0, "enq", 1, None, 0, 10), (1, "enq", 2, None, 0, 10),
          (2, "deq", None, 2, 20, 21), (2, "deq", None, 1, 22, 23))
    assert check_linearizable(h, QueueSpec())


def test_queue_empty_deq_rules():
    ok = H((0, "deq", None, EMPTY, 0, 1), (0, "enq", 5, None, 2, 3))
    assert check_linearizable(ok, QueueSpec())
    # EMPTY strictly after a completed enqueue with nothing dequeued: illegal
    bad = H((0, "enq", 5, None, 0, 1), (1, "deq", None, EMPTY, 5, 6))
    assert not check_linearizable(bad, QueueSpec())


def test_stack_lifo_ok_and_violation():
    ok = H((0, "push", 1, None, 0, 1), (0, "push", 2, None, 2, 3),
           (0, "pop", None, 2, 4, 5), (0, "pop", None, 1, 6, 7))
    assert check_linearizable(ok, StackSpec())
    bad = H((0, "push", 1, None, 0, 1), (0, "push", 2, None, 2, 3),
            (0, "pop", None, 1, 4, 5), (0, "pop", None, 2, 6, 7))
    assert not check_linearizable(bad, StackSpec())


def test_lost_element_rejected():
    h = H((0, "push", 7, None, 0, 1), (1, "pop", None, EMPTY, 5, 6))
    assert not check_linearizable(h, StackSpec())


def test_invalid_operation_interval():
    with pytest.raises(ValueError):
        Operation(0, "inc", None, 0, 10, 5)


def test_long_history_chunked_path():
    """>64 sequential ops exercises the quiescent-splitting path."""
    h = History()
    for i in range(100):
        h.record(0, "inc", None, i, 2 * i, 2 * i + 1)
    assert check_linearizable(h, CounterSpec())
    h.record(0, "inc", None, 55, 300, 301)  # duplicate ticket at the end
    assert not check_linearizable(h, CounterSpec())


def test_chunked_frontier_carries_ambiguous_state():
    """Concurrent enqueues before a quiescent point leave two possible
    states; the dequeue order after the gap picks one of them."""
    h = H((0, "enq", 1, None, 0, 10), (1, "enq", 2, None, 0, 10),
          # quiescence at t=10..100 (chunk boundary)
          (2, "deq", None, 2, 100, 101), (2, "deq", None, 1, 102, 103))
    # force the chunked path by padding with >64 later sequential ops
    t = 200
    for i in range(70):
        h.record(0, "enq", 100 + i, None, t, t + 1)
        h.record(0, "deq", None, 100 + i, t + 2, t + 3)
        t += 10
    assert check_linearizable(h, QueueSpec())


# -- end-to-end: recorded simulator histories ------------------------------------
# (the recording loop itself lives in tests.helpers.record_counter_history,
# shared with the property-based suite)

@pytest.mark.parametrize("prim_name", ["mp-server", "HybComb", "CC-Synch"])
def test_recorded_counter_history_linearizes(prim_name):
    h = record_counter_history(prim_name, nthreads=4, ops_each=8, seed=5)
    assert len(h) == 32
    assert check_linearizable(h, CounterSpec())


@pytest.mark.parametrize("factory", [
    ("treiber", StackSpec),
    ("locked-stack", StackSpec),
    ("ms-queue", QueueSpec),
])
def test_recorded_object_history_linearizes(factory):
    kind, spec_cls = factory
    m = Machine(tile_gx())
    if kind == "treiber":
        obj = TreiberStack(m)
        tids = range(4)
        push, pop, opn = obj.push, obj.pop, ("push", "pop")
    elif kind == "locked-stack":
        prim = MPServer(m, OpTable(), server_tid=0)
        obj = LockedStack(prim)
        prim.start()
        tids = range(1, 5)
        push, pop, opn = obj.push, obj.pop, ("push", "pop")
    else:
        prim = MPServer(m, OpTable(), server_tid=0)
        obj = OneLockMSQueue(prim)
        prim.start()
        tids = range(1, 5)
        push, pop, opn = obj.enqueue, obj.dequeue, ("enq", "deq")

    history = History()
    rng = np.random.default_rng(3)

    def client(ctx, pid, thinks):
        for k in range(7):
            t0 = m.now
            yield from push(ctx, pid * 100 + k)
            history.record(ctx.tid, opn[0], pid * 100 + k, None, t0, m.now)
            yield from ctx.work(int(thinks[k]))
            t0 = m.now
            v = yield from pop(ctx)
            history.record(ctx.tid, opn[1], None, v, t0, m.now)

    for i, t in enumerate(tids):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx, i + 1, rng.integers(0, 50, 7)))
    m.run()
    assert check_linearizable(history, spec_cls())


@given(st.integers(0, 10_000))
@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_recorded_histories_always_linearize(seed):
    h = record_counter_history("HybComb", nthreads=3, ops_each=6, seed=seed)
    assert check_linearizable(h, CounterSpec())
