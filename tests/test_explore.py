"""Tests for the schedule-exploration harness (repro.explore): seam
neutrality with no/null policy, trace recording and replay, policy
determinism, the search loop, tag filtering, and repro bundles."""

import pytest

from repro.explore import (
    MODES,
    SMALL_MATRIX,
    BoundedPreemptionPolicy,
    PCTPolicy,
    RandomWalkPolicy,
    ReplayPolicy,
    ReproBundle,
    SchedulePolicy,
    bundle_from_finding,
    explore,
    load_bundle,
    matrix,
    run_scenario,
    save_bundle,
    scenario_by_id,
)
from repro.explore.policy import _seeded_shuffle

MP_COUNTER = scenario_by_id("mp-server/counter")
HYB_COUNTER = scenario_by_id("HybComb/counter")
FT_CRASH = scenario_by_id("mp-server-ft/counter@crash")


# -- seam neutrality ----------------------------------------------------------

def test_null_policy_is_bit_identical_to_no_policy():
    """Installing the base SchedulePolicy (all choices 0) must not
    change the execution at all: same history, same event count."""
    base = run_scenario(MP_COUNTER)
    nulled = run_scenario(MP_COUNTER, SchedulePolicy())
    assert base.ok and nulled.ok
    assert nulled.history == base.history
    assert nulled.forced_choices == 0
    # the nulled run *records* decisions (trace non-empty) but the run
    # itself advances through the identical schedule
    assert len(nulled.trace) > 0
    assert all(v == 0 for _k, v in nulled.trace)


def test_default_matrix_passes_under_default_schedule():
    for scn in matrix("small"):
        out = run_scenario(scn)
        assert out.ok, f"{scn.sid} failed under the default schedule: {out.detail}"


# -- policy unit behaviour ----------------------------------------------------

def test_seeded_shuffle_is_deterministic_and_seed_sensitive():
    a = list(range(10))
    b = list(range(10))
    _seeded_shuffle(a, 42)
    _seeded_shuffle(b, 42)
    assert a == b
    assert sorted(a) == list(range(10))
    c = list(range(10))
    _seeded_shuffle(c, 43)
    assert c != a  # different seed, different permutation


class _FakeEntry:
    """Stand-in for an engine lane entry: only ``pinned`` matters here."""

    def __init__(self, i, pinned):
        self.i = i
        self.pinned = pinned

    def __repr__(self):
        return f"e{self.i}{'*' if self.pinned else ''}"


def test_reorder_lane_pins_callbacks_in_place():
    """Lane permutation must only move process resumes; model-internal
    callbacks (``pinned`` entries) keep their slots."""
    entries = [_FakeEntry(i, pinned)
               for i, pinned in enumerate(
                   [False, True, False, True, False, False])]
    pol = RandomWalkPolicy(seed=7, p_lane=1.0, p_udn=0, p_preempt=0)
    out = pol.reorder_lane(list(entries), now=0)
    assert sorted(out, key=id) == sorted(entries, key=id)  # a permutation
    for i, e in enumerate(entries):
        if e.pinned:
            assert out[i] is e, "a pinned (callback) entry moved"
    assert out != entries, "seed 7 with p_lane=1 must actually permute"
    assert pol.trace and pol.trace[0][0] == "L" and pol.trace[0][1] != 0


def test_replay_policy_per_kind_fifo_and_zero_past_end():
    pol = ReplayPolicy([("P", 5), ("U", 7), ("P", 0), ("L", 0)])
    assert pol.preempt("t", 0, 0) == 5
    assert pol.udn_delay(0, 0, 0, 1, 0) == 7
    assert pol.preempt("t", 0, 0) == 0
    assert pol.preempt("t", 0, 0) == 0  # past the end: default
    assert pol.udn_delay(0, 0, 0, 1, 0) == 0


def test_pct_policy_rejects_degenerate_ranks():
    with pytest.raises(ValueError):
        PCTPolicy(seed=1, ranks=1)


def test_random_walk_trace_replays_to_identical_outcome():
    """The recorded trace IS the schedule: replaying it reproduces the
    exact run -- history, verdict, event count."""
    out = run_scenario(HYB_COUNTER, RandomWalkPolicy(seed=12))
    assert out.forced_choices > 0, "seed 12 never deviated; pick another seed"
    rep = run_scenario(HYB_COUNTER, ReplayPolicy(out.trace))
    assert (rep.ok, rep.kind, rep.history, rep.events) == \
        (out.ok, out.kind, out.history, out.events)


def test_udn_delays_never_break_fifo():
    """p_udn=1.0 delays every message; the fabric's arrival clamp keeps
    per-stream FIFO, so a correct algorithm still linearizes."""
    pol = RandomWalkPolicy(seed=3, p_lane=0, p_udn=1.0, p_preempt=0)
    out = run_scenario(MP_COUNTER, pol)
    assert out.ok, out.detail
    assert any(k == "U" and v for k, v in out.trace)


def test_forced_preemption_is_charged_and_survivable():
    """BoundedPreemptionPolicy parks a thread mid-protocol; a correct
    algorithm must stay linearizable (and the choice must be recorded)."""
    out = run_scenario(HYB_COUNTER, BoundedPreemptionPolicy({0: 700, 5: 2500}))
    assert out.ok, out.detail
    assert out.forced_choices == 2


# -- tag filtering ------------------------------------------------------------

def test_tag_filter_protects_documented_limitations():
    """The ft-crash scenario zeroes preemption of the servers and the CS
    body; even a preempt-everything policy must then stay green."""
    pol = RandomWalkPolicy(seed=9, p_lane=0, p_udn=0, p_preempt=1.0)
    out = run_scenario(FT_CRASH, pol)
    assert out.ok, out.detail


def test_tag_filtered_trace_replays_identically():
    """The filter's own trace is authoritative: replaying it (through a
    fresh filter) reproduces the run bit-for-bit."""
    out = run_scenario(FT_CRASH, RandomWalkPolicy(seed=4))
    rep = run_scenario(FT_CRASH, ReplayPolicy(out.trace))
    assert (rep.ok, rep.kind, rep.history, rep.events) == \
        (out.ok, out.kind, out.history, out.events)


# -- the search loop ----------------------------------------------------------

def test_explore_requires_a_budget_and_known_modes():
    with pytest.raises(ValueError):
        explore([MP_COUNTER])
    with pytest.raises(ValueError):
        explore([MP_COUNTER], max_schedules=1, modes=("chaos",))


def test_explore_round_robins_modes_and_finds_nothing_on_correct_code():
    report = explore(SMALL_MATRIX[:3], max_schedules=9, seed=2,
                     modes=("random", "pct"))
    assert report.ok
    assert report.schedules_run == 9
    assert report.per_mode == {"random": 6, "pct": 3}
    assert report.scenarios == [s.sid for s in SMALL_MATRIX[:3]]


def test_systematic_mode_enumerates_single_preemptions():
    report = explore([MP_COUNTER], max_schedules=6, seed=0,
                     modes=("systematic",))
    assert report.ok
    assert report.per_mode["systematic"] == 6


# -- repro bundles ------------------------------------------------------------

def test_bundle_save_load_round_trip(tmp_path):
    out = run_scenario(HYB_COUNTER, RandomWalkPolicy(seed=12))
    from repro.machine import tile_gx
    bundle = ReproBundle(scenario=HYB_COUNTER.sid,
                         trace=list(out.trace), kind="invariant",
                         detail="synthetic", policy={"kind": "random-walk"},
                         config_fingerprint=tile_gx().fingerprint())
    path = save_bundle(bundle, str(tmp_path / "b.json"))
    back = load_bundle(path)
    assert back == bundle
    assert back.forced_choices == bundle.forced_choices


def test_bundle_refuses_foreign_fingerprint(tmp_path):
    from repro.explore import replay as replay_bundle
    bundle = ReproBundle(scenario=HYB_COUNTER.sid, trace=[], kind="invariant",
                         detail="", config_fingerprint="not-this-machine")
    with pytest.raises(ValueError, match="machine config"):
        replay_bundle(bundle)


def test_bundle_rejects_unknown_format(tmp_path):
    import json
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"format": 99}))
    with pytest.raises(ValueError, match="format"):
        load_bundle(str(p))


# -- CLI ----------------------------------------------------------------------

def test_cli_run_small_matrix_clean_exit(tmp_path, capsys):
    from repro.explore.cli import main
    rc = main(["run", "--max-schedules", "6", "--budget", "30",
               "--seed", "1", "--matrix", "small",
               "--out", str(tmp_path / "out")])
    assert rc == 0
    assert "no failing interleaving" in capsys.readouterr().out


def test_cli_selftest_finds_the_seeded_bug(capsys):
    from repro.explore.cli import main
    rc = main(["selftest", "--budget", "60", "--max-schedules", "30",
               "--seed", "0"])
    assert rc == 0
    assert "self-test passed" in capsys.readouterr().out


def test_cli_replay_reproduces_saved_bundle(tmp_path, capsys):
    from repro.explore import MUTATION_SCENARIO
    from repro.explore.cli import main
    report = explore([MUTATION_SCENARIO], max_schedules=20, seed=0,
                     stop_after=1, max_events=500_000)
    assert not report.ok
    bundle = bundle_from_finding(report.findings[0])
    path = save_bundle(bundle, str(tmp_path / "bug.json"))
    rc = main(["replay", path])
    assert rc == 0
    assert "reproduced identically twice" in capsys.readouterr().out


def test_modes_constant_matches_policy_zoo():
    assert MODES == ("random", "pct", "systematic")
