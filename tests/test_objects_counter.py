"""Tests for LockedCounter and ArrayCS over all four approaches."""

import pytest

from repro.core import CCSynch, HybComb, MPServer, OpTable, ShmServer
from repro.machine import Machine, tile_gx
from repro.objects import ArrayCS, LockedCounter


def build_prim(name, machine, optable, num_clients):
    if name == "mp-server":
        prim = MPServer(machine, optable, server_tid=0)
        tids = range(1, num_clients + 1)
    elif name == "shm-server":
        prim = ShmServer(machine, optable, server_tid=0,
                         client_tids=range(1, num_clients + 1))
        tids = range(1, num_clients + 1)
    elif name == "HybComb":
        prim = HybComb(machine, optable)
        tids = range(num_clients)
    else:
        prim = CCSynch(machine, optable)
        tids = range(num_clients)
    return prim, list(tids)


def run_all(machine, prim, procs):
    def coordinator():
        for p in procs:
            yield from p.join()
        if hasattr(prim, "stop"):
            prim.stop()

    machine.sim.spawn(coordinator(), name="coordinator")
    machine.run()


APPROACHES = ["mp-server", "HybComb", "shm-server", "CC-Synch"]


@pytest.mark.parametrize("name", APPROACHES)
def test_counter_increment_returns_unique_tickets(name):
    m = Machine(tile_gx(debug_checks=True))
    table = OpTable()
    prim, tids = build_prim(name, m, table, 6)
    counter = LockedCounter(prim)
    prim.start()
    tickets = []

    def client(ctx):
        for _ in range(30):
            t = yield from counter.increment(ctx)
            tickets.append(t)
            yield from ctx.work(20)

    procs = []
    for tid in tids:
        ctx = m.thread(tid)
        procs.append(m.spawn(ctx, client(ctx)))
    run_all(m, prim, procs)
    assert sorted(tickets) == list(range(180))
    assert counter.value() == 180


@pytest.mark.parametrize("name", APPROACHES)
def test_counter_read_is_linearizable_bound(name):
    """A read seen by a thread is >= the number of its own increments."""
    m = Machine(tile_gx())
    table = OpTable()
    prim, tids = build_prim(name, m, table, 4)
    counter = LockedCounter(prim)
    prim.start()
    ok = []

    def client(ctx):
        mine = 0
        for _ in range(15):
            yield from counter.increment(ctx)
            mine += 1
            seen = yield from counter.read(ctx)
            ok.append(seen >= mine)

    procs = []
    for tid in tids:
        ctx = m.thread(tid)
        procs.append(m.spawn(ctx, client(ctx)))
    run_all(m, prim, procs)
    assert all(ok)


@pytest.mark.parametrize("name", APPROACHES)
def test_array_cs_increments_exactly(name):
    m = Machine(tile_gx())
    table = OpTable()
    prim, tids = build_prim(name, m, table, 4)
    arr = ArrayCS(prim, array_words=16)
    prim.start()
    total = {"n": 0}

    def client(ctx, k):
        for _ in range(10):
            r = yield from arr.run(ctx, k)
            assert r == k
            total["n"] += k
            yield from ctx.work(10)

    procs = []
    for i, tid in enumerate(tids):
        ctx = m.thread(tid)
        procs.append(m.spawn(ctx, client(ctx, i + 1)))
    run_all(m, prim, procs)
    assert arr.total_increments() == total["n"]


def test_array_cs_zero_iterations():
    m = Machine(tile_gx())
    table = OpTable()
    prim = MPServer(m, table, server_tid=0)
    arr = ArrayCS(prim)
    prim.start()
    ctx = m.thread(1)

    def client():
        r = yield from arr.run(ctx, 0)
        return r

    p = m.spawn(ctx, client())
    m.run()
    assert p.result == 0
    assert arr.total_increments() == 0


def test_array_cs_validates_size():
    m = Machine(tile_gx())
    prim = MPServer(m, OpTable(), server_tid=0)
    with pytest.raises(ValueError):
        ArrayCS(prim, array_words=0)


def test_counter_cost_scales_with_cs_length():
    """Longer CS bodies must take proportionally longer on the server --
    the premise of Figure 4c."""
    durations = {}
    for k in (1, 10):
        m = Machine(tile_gx())
        table = OpTable()
        prim = MPServer(m, table, server_tid=0)
        arr = ArrayCS(prim)
        prim.start()
        ctx = m.thread(1)

        def client():
            for _ in range(50):
                yield from arr.run(ctx, k)

        m.spawn(ctx, client())
        m.run()
        durations[k] = m.now
    assert durations[10] > durations[1]
