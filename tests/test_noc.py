"""Unit + property tests for the mesh NoC (repro.noc)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc import ContendedMesh, Mesh
from repro.sim import Simulator


# -- Mesh topology ---------------------------------------------------------

def test_coords_row_major():
    m = Mesh(6, 6)
    assert m.coords(0) == (0, 0)
    assert m.coords(5) == (5, 0)
    assert m.coords(6) == (0, 1)
    assert m.coords(35) == (5, 5)


def test_node_at_inverts_coords():
    m = Mesh(6, 6)
    for n in range(m.num_nodes):
        assert m.node_at(*m.coords(n)) == n


def test_hops_manhattan():
    m = Mesh(6, 6)
    assert m.hops(0, 0) == 0
    assert m.hops(0, 5) == 5
    assert m.hops(0, 35) == 10
    assert m.hops(7, 14) == 2  # (1,1) -> (2,2)


def test_latency_formula():
    m = Mesh(6, 6, base=4, per_hop=1, per_word=1)
    assert m.latency(0, 0, words=1) == 4
    assert m.latency(0, 1, words=1) == 5
    assert m.latency(0, 1, words=3) == 7


def test_latency_zero_words_rejected():
    m = Mesh(2, 2)
    with pytest.raises(ValueError):
        m.latency(0, 1, words=0)


def test_route_is_xy():
    m = Mesh(4, 4)
    # from (0,0) to (2,1): x first then y
    assert m.route(0, 6) == [0, 1, 2, 6]


def test_route_length_matches_hops():
    m = Mesh(5, 3)
    for src in range(m.num_nodes):
        for dst in range(m.num_nodes):
            assert len(m.route(src, dst)) == m.hops(src, dst) + 1


def test_nearest_prefers_low_id_on_tie():
    m = Mesh(4, 4)
    # nodes 1 and 4 are both 1 hop from node 0
    assert m.nearest(0, [4, 1]) == 1


def test_invalid_node_raises():
    m = Mesh(2, 2)
    with pytest.raises(ValueError):
        m.coords(4)
    with pytest.raises(ValueError):
        m.coords(-1)


def test_invalid_dimensions():
    with pytest.raises(ValueError):
        Mesh(0, 4)


node_pairs = st.tuples(st.integers(0, 35), st.integers(0, 35))


@given(node_pairs)
def test_hops_symmetric(pair):
    m = Mesh(6, 6)
    a, b = pair
    assert m.hops(a, b) == m.hops(b, a)


@given(node_pairs, st.integers(0, 35))
def test_hops_triangle_inequality(pair, c):
    m = Mesh(6, 6)
    a, b = pair
    assert m.hops(a, b) <= m.hops(a, c) + m.hops(c, b)


@given(node_pairs)
def test_route_steps_are_adjacent(pair):
    m = Mesh(6, 6)
    a, b = pair
    path = m.route(a, b)
    assert path[0] == a and path[-1] == b
    for u, v in zip(path, path[1:]):
        assert m.hops(u, v) == 1


# -- ContendedMesh ----------------------------------------------------------

def test_contended_transit_uncontended_close_to_analytic():
    sim = Simulator()
    m = Mesh(6, 6, base=4, per_hop=1)
    cm = ContendedMesh(sim, m)

    def proc():
        t = yield from cm.transit(0, 3, words=1)
        return t

    p = sim.spawn(proc())
    sim.run()
    # hop latencies plus router base; identical to analytic when idle
    assert p.result == m.latency(0, 3, words=1)
    assert cm.packets_delivered == 1


def test_contended_transit_serializes_on_shared_link():
    sim = Simulator()
    m = Mesh(6, 1, base=0, per_hop=2)
    cm = ContendedMesh(sim, m, link_occupancy=2)
    done = []

    def proc(name):
        yield from cm.transit(0, 5, words=4)
        done.append((name, sim.now))

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    sim.run()
    # second packet must finish strictly later than the first
    assert done[0][0] == "a"
    assert done[1][1] > done[0][1]
    assert cm.total_link_wait > 0


def test_contended_same_node_transit():
    sim = Simulator()
    m = Mesh(2, 2, base=3)
    cm = ContendedMesh(sim, m)

    def proc():
        t = yield from cm.transit(1, 1, words=1)
        return t

    p = sim.spawn(proc())
    sim.run()
    assert p.result == 3  # just the router base
