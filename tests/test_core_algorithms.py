"""Correctness tests for the four synchronization approaches.

The central probe is concurrent fetch-and-increment: if every apply_op
returns a distinct value and the final counter equals the op count, the
execution was linearizable and no operation was lost, duplicated, or
executed outside mutual exclusion.
"""

import pytest

from tests.helpers import build, run_clients

APPROACHES = ["mp-server", "HybComb", "shm-server", "CC-Synch"]


def assert_linearizable_counter(machine, addr, results, expected_total):
    flat = [v for client in results for v in client]
    assert len(flat) == expected_total
    assert sorted(flat) == list(range(expected_total)), "duplicate or missing ticket"
    assert machine.mem.peek(addr) == expected_total
    # per-client return values are monotonically increasing (program order)
    for client in results:
        assert client == sorted(client)


@pytest.mark.parametrize("name", APPROACHES)
def test_single_client(name):
    m, prim, addr, opcode, ctxs = build(name, 1)
    results = run_clients(m, prim, opcode, ctxs, ops_each=20)
    assert_linearizable_counter(m, addr, results, 20)


@pytest.mark.parametrize("name", APPROACHES)
def test_two_clients(name):
    m, prim, addr, opcode, ctxs = build(name, 2)
    results = run_clients(m, prim, opcode, ctxs, ops_each=50)
    assert_linearizable_counter(m, addr, results, 100)


@pytest.mark.parametrize("name", APPROACHES)
def test_many_clients_high_contention(name):
    m, prim, addr, opcode, ctxs = build(name, 12)
    results = run_clients(m, prim, opcode, ctxs, ops_each=40, think_max=10)
    assert_linearizable_counter(m, addr, results, 480)


@pytest.mark.parametrize("name", APPROACHES)
@pytest.mark.parametrize("seed", [2, 3, 4])
def test_random_schedules(name, seed):
    m, prim, addr, opcode, ctxs = build(name, 7)
    results = run_clients(m, prim, opcode, ctxs, ops_each=30, seed=seed)
    assert_linearizable_counter(m, addr, results, 210)


@pytest.mark.parametrize("name", ["HybComb", "CC-Synch"])
@pytest.mark.parametrize("max_ops", [1, 2, 5, 200])
def test_combiners_respect_max_ops(name, max_ops):
    m, prim, addr, opcode, ctxs = build(name, 8, max_ops=max_ops)
    results = run_clients(m, prim, opcode, ctxs, ops_each=30, think_max=5)
    assert_linearizable_counter(m, addr, results, 240)
    assert prim.combining_sessions, "no combining happened"
    limit = max_ops + 1 if name == "HybComb" else max_ops  # own op + MAX_OPS others
    for _t, ops in prim.combining_sessions:
        assert 1 <= ops <= limit
    # every op was executed by some combiner session
    assert sum(ops for _t, ops in prim.combining_sessions) == 240


def test_hybcomb_invariants_under_debug_checks():
    """debug_checks=True turns on Proposition 1/2 assertions inside the
    algorithm; a full contended run must not trip them."""
    m, prim, addr, opcode, ctxs = build("HybComb", 10, max_ops=4, debug=True)
    results = run_clients(m, prim, opcode, ctxs, ops_each=25, think_max=3)
    assert_linearizable_counter(m, addr, results, 250)


def test_mp_server_critical_path_is_stall_free():
    """The core claim of Figure 4a: under load, virtually no coherence
    stalls remain on the MP-SERVER servicing thread."""
    m, prim, addr, opcode, ctxs = build("mp-server", 10)
    run_clients(m, prim, opcode, ctxs, ops_each=50, think_max=5)
    server = prim.server_ctx.core
    # only the cold misses on the CS data remain (a per-run constant,
    # not a per-op cost): a couple of RMRs, not hundreds
    assert server.rmr <= 4
    assert server.stall_mem < 4 * m.cfg.c_mem_base
    assert server.stall_atomic == 0
    assert server.stall_mem / prim.requests_served < 0.5
    assert prim.requests_served == 500


def test_shm_server_pays_rmrs_per_request():
    """Figure 1: the SHM server takes ~2 RMRs per served CS."""
    m, prim, addr, opcode, ctxs = build("shm-server", 6)
    run_clients(m, prim, opcode, ctxs, ops_each=40, think_max=5)
    server = prim.server_ctx.core
    assert prim.requests_served == 240
    # at least one RMR per request (read of the freshly-written channel),
    # typically two (response write) minus warm-up effects
    assert server.rmr >= prim.requests_served
    assert server.stall_mem > 0


def test_hybcomb_executes_few_cas_per_op():
    """Section 5.3: 'as few as 0.1 executed CAS per operation in high
    concurrency levels'.  At high concurrency the combining snowball
    makes combiner changes (and hence CAS) rare.  (At moderate
    concurrency our simulation sees ~1 CAS/op where the paper reports
    up to 0.7 -- the handover storms are somewhat sharper in simulated
    time; the deviation is documented in EXPERIMENTS.md.)"""
    m, prim, addr, opcode, ctxs = build("HybComb", 24)
    run_clients(m, prim, opcode, ctxs, ops_each=60, think_max=50)
    total_ops = 24 * 60
    total_cas = sum(ctx.core.cas_ops for ctx in ctxs)
    assert total_cas / total_ops <= 0.2


def test_ccsynch_single_atomic_per_op():
    """CC-Synch issues exactly one SWAP per apply_op (no CAS)."""
    m, prim, addr, opcode, ctxs = build("CC-Synch", 6)
    run_clients(m, prim, opcode, ctxs, ops_each=30)
    total_ops = 6 * 30
    assert sum(ctx.core.swap_ops for ctx in ctxs) == total_ops
    assert sum(ctx.core.cas_ops for ctx in ctxs) == 0


def test_mp_server_requires_no_client_atomics():
    m, prim, addr, opcode, ctxs = build("mp-server", 5)
    run_clients(m, prim, opcode, ctxs, ops_each=20)
    assert sum(ctx.core.atomic_ops for ctx in ctxs) == 0


def test_different_opcodes_dispatch_correctly():
    """Multiple registered CS bodies must not cross wires."""
    from repro.core import MPServer, OpTable
    from repro.machine import Machine, tile_gx

    m = Machine(tile_gx())
    table = OpTable()
    a = m.mem.alloc(1)
    b = m.mem.alloc(1)

    def add_a(ctx, arg):
        v = yield from ctx.load(a)
        yield from ctx.store(a, v + arg)
        return v + arg

    def mul_b(ctx, arg):
        v = yield from ctx.load(b)
        yield from ctx.store(b, v * arg if v else arg)
        return 0

    op_a = table.register(add_a)
    op_b = table.register(mul_b)
    prim = MPServer(m, table, server_tid=0)
    prim.start()
    ctx = m.thread(1)

    def client():
        r1 = yield from prim.apply_op(ctx, op_a, 10)
        r2 = yield from prim.apply_op(ctx, op_b, 7)
        r3 = yield from prim.apply_op(ctx, op_a, 5)
        return r1, r2, r3

    p = m.spawn(ctx, client())
    m.run()
    assert p.result == (10, 0, 15)
    assert m.mem.peek(a) == 15
    assert m.mem.peek(b) == 7


def test_unknown_opcode_raises():
    from repro.core import OpTable
    from repro.machine import Machine, tile_gx

    m = Machine(tile_gx())
    table = OpTable()
    ctx = m.thread(0)

    def prog():
        yield from table.execute(ctx, 3, 0)

    m.spawn(ctx, prog())
    with pytest.raises(ValueError, match="unknown opcode"):
        m.run()


def test_primitive_double_start_rejected():
    m, prim, *_ = build("mp-server", 1)
    with pytest.raises(RuntimeError, match="already started"):
        prim.start()


@pytest.mark.parametrize("name", ["HybComb", "CC-Synch"])
def test_combiner_max_ops_validation(name):
    from repro.core import CCSynch, HybComb, OpTable
    from repro.machine import Machine, tile_gx

    cls = HybComb if name == "HybComb" else CCSynch
    with pytest.raises(ValueError):
        cls(Machine(tile_gx()), OpTable(), max_ops=0)
