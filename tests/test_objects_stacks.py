"""Correctness tests for the stack implementations (coarse-lock, Treiber)."""

import numpy as np
import pytest

from repro.core import CCSynch, HybComb, MPServer, OpTable, ShmServer
from repro.machine import Machine, tile_gx
from repro.objects import EMPTY, LockedStack, TreiberStack


def build_stack(kind, machine, num_clients):
    if kind == "treiber":
        return TreiberStack(machine), [], list(range(num_clients))
    table = OpTable()
    if kind == "mp-server":
        prim = MPServer(machine, table, server_tid=0)
        tids = list(range(1, num_clients + 1))
    elif kind == "shm-server":
        prim = ShmServer(machine, table, server_tid=0,
                         client_tids=range(1, num_clients + 1))
        tids = list(range(1, num_clients + 1))
    elif kind == "HybComb":
        prim = HybComb(machine, table)
        tids = list(range(num_clients))
    else:
        prim = CCSynch(machine, table)
        tids = list(range(num_clients))
    s = LockedStack(prim)
    prim.start()
    return s, [prim], tids


def run_all(machine, prims, procs):
    def coordinator():
        for p in procs:
            yield from p.join()
        for prim in prims:
            if hasattr(prim, "stop"):
                prim.stop()

    machine.sim.spawn(coordinator(), name="coordinator")
    machine.run()
    for p in procs:
        assert not p.alive


STACK_KINDS = ["mp-server", "HybComb", "shm-server", "CC-Synch", "treiber"]


@pytest.mark.parametrize("kind", STACK_KINDS)
def test_sequential_lifo(kind):
    m = Machine(tile_gx())
    s, prims, tids = build_stack(kind, m, 1)
    ctx = m.thread(tids[0])
    out = []

    def prog():
        for v in range(1, 11):
            yield from s.push(ctx, v)
        for _ in range(10):
            v = yield from s.pop(ctx)
            out.append(v)
        v = yield from s.pop(ctx)
        out.append(v)

    procs = [m.spawn(ctx, prog())]
    run_all(m, prims, procs)
    assert out == list(range(10, 0, -1)) + [EMPTY]


@pytest.mark.parametrize("kind", STACK_KINDS)
def test_pop_empty(kind):
    m = Machine(tile_gx())
    s, prims, tids = build_stack(kind, m, 1)
    ctx = m.thread(tids[0])

    def prog():
        return (yield from s.pop(ctx))

    procs = [m.spawn(ctx, prog())]
    run_all(m, prims, procs)
    assert procs[0].result == EMPTY


@pytest.mark.parametrize("kind", STACK_KINDS)
@pytest.mark.parametrize("seed", [1, 2])
def test_concurrent_conservation(kind, seed):
    """Under concurrent push/pop, no element is lost or duplicated."""
    m = Machine(tile_gx())
    nthreads = 5
    s, prims, tids = build_stack(kind, m, nthreads)
    rng = np.random.default_rng(seed)
    N = 30
    popped = []

    def worker(ctx, pid, thinks):
        for k in range(N):
            yield from s.push(ctx, pid * 1000 + k)
            yield from ctx.work(int(thinks[k]))
            v = yield from s.pop(ctx)
            if v != EMPTY:
                popped.append(v)

    procs = []
    for i, tid in enumerate(tids):
        ctx = m.thread(tid)
        procs.append(m.spawn(ctx, worker(ctx, i + 1, rng.integers(0, 60, N))))
    run_all(m, prims, procs)
    remaining = s.drain_to_list()
    expected = sorted(p * 1000 + k for p in range(1, nthreads + 1) for k in range(N))
    assert sorted(popped + remaining) == expected


@pytest.mark.parametrize("kind", STACK_KINDS)
def test_own_push_pop_adjacency(kind):
    """A thread that pushes then immediately pops with no interleaving
    possibility (single thread) gets its own value back."""
    m = Machine(tile_gx())
    s, prims, tids = build_stack(kind, m, 1)
    ctx = m.thread(tids[0])

    def prog():
        results = []
        for v in (11, 22, 33):
            yield from s.push(ctx, v)
            r = yield from s.pop(ctx)
            results.append(r)
        return results

    procs = [m.spawn(ctx, prog())]
    run_all(m, prims, procs)
    assert procs[0].result == [11, 22, 33]


def test_treiber_cas_failures_grow_with_contention():
    """The Figure 5b story: Treiber's top-pointer CAS fails increasingly
    often as concurrency rises."""
    def run(nthreads):
        m = Machine(tile_gx())
        s = TreiberStack(m)

        def worker(ctx):
            for k in range(20):
                yield from s.push(ctx, k + 1)
                yield from s.pop(ctx)

        ctxs = [m.thread(i) for i in range(nthreads)]
        for ctx in ctxs:
            m.spawn(ctx, worker(ctx))
        m.run()
        total_ops = nthreads * 40
        total_fail = sum(ctx.core.cas_failures for ctx in ctxs)
        return total_fail / total_ops

    low = run(2)
    high = run(12)
    assert high > low


def test_treiber_lifo_visible_to_concurrent_pops():
    """Values popped by any single thread from its own recent pushes
    respect LIFO relative to each other."""
    m = Machine(tile_gx())
    s = TreiberStack(m)
    ctx = m.thread(0)

    def prog():
        yield from s.push(ctx, 1)
        yield from s.push(ctx, 2)
        a = yield from s.pop(ctx)
        b = yield from s.pop(ctx)
        return a, b

    p = m.spawn(ctx, prog())
    m.run()
    assert p.result == (2, 1)


def test_locked_stack_drain_order():
    m = Machine(tile_gx())
    s, prims, tids = build_stack("mp-server", m, 1)
    ctx = m.thread(tids[0])

    def prog():
        for v in (1, 2, 3):
            yield from s.push(ctx, v)

    procs = [m.spawn(ctx, prog())]
    run_all(m, prims, procs)
    assert s.drain_to_list() == [3, 2, 1]


# -- full linearizability on small recorded histories ----------------------

@pytest.mark.parametrize("kind", STACK_KINDS)
def test_small_history_fully_linearizable(kind):
    """Beyond conservation: record a complete concurrent history small
    enough for the Wing&Gong checker and verify real linearizability."""
    from repro.analysis.linearizability import (
        History, PoolSpec, StackSpec, check_linearizable)

    m = Machine(tile_gx())
    nthreads, ops_each = 4, 4
    s, prims, tids = build_stack(kind, m, nthreads)
    history = History()
    rng = np.random.default_rng(17)

    def worker(ctx, pid, thinks):
        for k in range(ops_each):
            val = pid * 100 + k
            t0 = m.now
            yield from s.push(ctx, val)
            history.record(ctx.tid, "push", val, None, t0, m.now)
            yield from ctx.work(int(thinks[2 * k]))
            t0 = m.now
            v = yield from s.pop(ctx)
            history.record(ctx.tid, "pop", None, v, t0, m.now)
            yield from ctx.work(int(thinks[2 * k + 1]))

    procs = []
    for i, tid in enumerate(tids):
        ctx = m.thread(tid)
        procs.append(m.spawn(ctx, worker(ctx, i + 1,
                                         rng.integers(0, 60, 2 * ops_each))))
    run_all(m, prims, procs)

    assert len(history) == 2 * nthreads * ops_each
    assert check_linearizable(history, StackSpec())
    assert check_linearizable(history, PoolSpec())


def test_elimination_stack_small_history_linearizable():
    """Eliminated push/pop pairs never touch the backing stack; the
    recorded history must still linearize against the LIFO spec (the
    pair linearizes adjacently inside its overlap window)."""
    from repro.analysis.linearizability import (
        ElimStackSpec, History, check_linearizable)
    from repro.objects import EliminationStack

    m = Machine(tile_gx())
    s = EliminationStack(m, TreiberStack(m), num_slots=2, window_cycles=80,
                         seed=99)
    history = History()
    rng = np.random.default_rng(31)

    def worker(ctx, pid, thinks):
        for k in range(4):
            val = pid * 100 + k
            t0 = m.now
            yield from s.push(ctx, val)
            history.record(ctx.tid, "push", val, None, t0, m.now)
            t0 = m.now
            v = yield from s.pop(ctx)
            history.record(ctx.tid, "pop", None, v, t0, m.now)
            yield from ctx.work(int(thinks[k]))

    for i in range(4):
        ctx = m.thread(i)
        m.spawn(ctx, worker(ctx, i + 1, rng.integers(0, 30, 4)))
    m.run()
    assert check_linearizable(history, ElimStackSpec())
