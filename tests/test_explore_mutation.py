"""The mutation self-test (explorer sensitivity check).

A copy of HYBCOMB with a known ordering bug seeded into it (the lease
takeover path never re-checks whether the preempted combiner finished --
see :mod:`repro.explore.mutations`) must be caught by the explorer
within a fixed budget; its repro bundle must replay the identical
failing history twice; and the shrinker must cut a failing schedule down
to a handful of forced choices.

This is the test *of the tests*: if a refactor of the seams or the
oracles ever blinds the explorer, this file goes red even though every
correct algorithm still passes.
"""

import pytest

from repro.analysis.linearizability import CounterSpec, History, check_linearizable
from repro.explore import (
    MUTATION_SCENARIO,
    bundle_from_finding,
    explore,
    run_scenario,
    scenario_by_id,
    shrink,
    verify_bundle,
)

# fixed detection budget: small enough for CI, comfortably past the
# first findings (seed 0 yields invariant findings by schedule ~4)
BUDGET_SCHEDULES = 20
SEED = 0
# the buggy protocol can retry-storm under some schedules; cap events so
# those runs fail fast as "exception" findings instead of burning time
MAX_EVENTS = 500_000


@pytest.fixture(scope="module")
def report():
    return explore([MUTATION_SCENARIO], max_schedules=BUDGET_SCHEDULES,
                   seed=SEED, max_events=MAX_EVENTS)


def _semantic_findings(report):
    """Findings where the oracles (not a crash) convicted the run."""
    return [f for f in report.findings
            if f.kind in ("invariant", "linearizability")]


def test_seeded_bug_is_dormant_under_the_default_schedule():
    """The mutation only misbehaves when a combiner is preempted past
    its lease mid-session -- the unexplored schedule must stay green
    (otherwise plain tests would already catch it and the explorer
    would prove nothing)."""
    out = run_scenario(MUTATION_SCENARIO)
    assert out.ok, out.detail


def test_unmutated_twin_survives_the_same_budget():
    """Control: real HYBCOMB under the identical search budget has no
    findings, so detection below is the mutation's doing."""
    clean = explore([scenario_by_id("HybComb/counter")],
                    max_schedules=BUDGET_SCHEDULES, seed=SEED,
                    max_events=MAX_EVENTS)
    assert clean.ok, [f.detail for f in clean.findings]


def test_explorer_detects_the_seeded_race_within_budget(report):
    assert not report.ok, (
        f"seeded bug not found in {report.schedules_run} schedules")
    semantic = _semantic_findings(report)
    assert semantic, (
        "only crashes were found; the linearizability/invariant oracles "
        f"never fired: {[(f.kind, f.detail) for f in report.findings]}")
    # the conviction is real: the recorded history has no legal
    # linearization against the counter spec
    f = max(semantic, key=lambda x: x.forced_choices)
    h = History()
    for rec in f.history:
        h.record(*rec)
    assert not check_linearizable(h, CounterSpec())


def test_repro_bundle_replays_identical_failure_twice(report):
    f = max(_semantic_findings(report), key=lambda x: x.forced_choices)
    bundle = bundle_from_finding(f)
    out = verify_bundle(bundle, times=2)  # raises if replays diverge
    assert out.kind == f.kind
    assert out.history == f.history, \
        "replay reproduced a different history than the original run"


def test_shrinker_minimizes_to_a_quarter_or_less(report):
    candidates = [f for f in _semantic_findings(report)
                  if f.forced_choices >= 16]
    assert candidates, "no finding with >=16 forced choices to shrink"
    f = max(candidates, key=lambda x: x.forced_choices)
    bundle = bundle_from_finding(f)
    small = shrink(bundle)
    assert small.forced_choices <= max(1, bundle.forced_choices // 4), (
        f"shrinker left {small.forced_choices} of "
        f"{bundle.forced_choices} forced choices")
    assert small.kind == bundle.kind
    # the minimized bundle is itself a valid repro bundle
    verify_bundle(small, times=2)
    assert small.policy["shrunk"]["from_forced"] == bundle.forced_choices
