"""Determinism under parallelism (repro.experiments.parallel).

The parallel sweep runner's whole contract is: same figures, faster.
These tests hold it to that -- a parallel fig3a must be bit-identical
(by FigureData fingerprint) to a serial one -- and pin the engine's
own determinism with a golden fingerprint computed before the hot-path
rewrite (the "before/after" proof: the optimized engine reproduces the
pre-optimization numbers exactly).
"""

import pickle

import pytest

from repro.analysis.series import FigureData
from repro.experiments.fig3 import run_fig3a_3b
from repro.experiments.parallel import (
    PointFailure,
    point,
    resolve_jobs,
    run_sweep,
)
from repro.machine.config import tile_gx
from repro.workload.driver import WorkloadSpec
from repro.workload.scenarios import run_counter_benchmark

#: FigureData.fingerprint() of the golden sweep below, recorded from the
#: pre-optimization heapq trampoline.  The rewritten engine must keep
#: producing it bit-for-bit: same seed => same FigureData, forever.
GOLDEN_FINGERPRINT = (
    "e398afdeb28966ca1f802c01d0908308c513040c54e201a0d9e01819d1ea3100"
)


def _golden_figure() -> FigureData:
    fig = FigureData("golden", "t", "x", "y")
    for approach in ("mp-server", "HybComb"):
        for t in (1, 5, 15):
            fig.add_point(approach, t, run_counter_benchmark(
                approach, t, spec=WorkloadSpec.quick()))
    return fig


def test_engine_matches_pre_optimization_golden_fingerprint():
    assert _golden_figure().fingerprint() == GOLDEN_FINGERPRINT


def test_fingerprint_ignores_host_perf_fields():
    # two identical runs differ in wall time / host event counts only;
    # the fingerprint must not see that
    a = _golden_figure()
    b = _golden_figure()
    (_, ra), = a.series["mp-server"].points[:1]
    (_, rb), = b.series["mp-server"].points[:1]
    rb.host_wall_seconds = ra.host_wall_seconds + 1.0
    rb.host_events_processed = ra.host_events_processed + 12345
    assert a.fingerprint() == b.fingerprint()


def test_fig3a_serial_vs_jobs4_identical_fingerprints():
    """The acceptance check: fig3a quick, serial vs --jobs 4."""
    fig_a_serial, fig_b_serial = run_fig3a_3b(quick=True)
    fig_a_par, fig_b_par = run_fig3a_3b(quick=True, jobs=4)
    assert fig_a_serial.fingerprint() == fig_a_par.fingerprint()
    assert fig_b_serial.fingerprint() == fig_b_par.fingerprint()
    # same series, same point order, not merely same hash
    assert fig_a_serial.labels() == fig_a_par.labels()
    for label in fig_a_serial.labels():
        assert (fig_a_serial.series[label].xs()
                == fig_a_par.series[label].xs())


def test_machine_config_fingerprint_roundtrips_through_pickle():
    # worker processes receive their MachineConfig by pickle; the cost
    # model must arrive unchanged or parallel points would silently run
    # under a different machine
    cfg = tile_gx()
    clone = pickle.loads(pickle.dumps(cfg))
    assert clone.fingerprint() == cfg.fingerprint()


# -- runner mechanics -------------------------------------------------------

def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def test_run_sweep_serial_preserves_submission_order():
    pts = [point("s", x, _square, x) for x in (3, 1, 2)]
    assert run_sweep(pts, jobs=1) == [9, 1, 4]


def test_run_sweep_parallel_preserves_submission_order():
    pts = [point("s", x, _square, x) for x in range(8)]
    assert run_sweep(pts, jobs=4) == [x * x for x in range(8)]


@pytest.mark.parametrize("jobs", [1, 3])
def test_point_failure_names_the_failing_point(jobs):
    pts = [point("ok", 1, _square, 1), point("bad", 7, _boom, 7)]
    with pytest.raises(PointFailure) as exc_info:
        run_sweep(pts, jobs=jobs, name="mysweep")
    msg = str(exc_info.value)
    assert "mysweep" in msg and "'bad'" in msg and "x=7" in msg
    assert isinstance(exc_info.value.cause, ValueError)


def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1      # default: serial
    assert resolve_jobs(6) == 6         # explicit argument
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert resolve_jobs(None) == 4      # environment
    assert resolve_jobs(2) == 2         # argument beats environment
    monkeypatch.setenv("REPRO_JOBS", "zero?")
    with pytest.raises(ValueError):
        resolve_jobs(None)


def test_obs_session_forces_serial_sweeps():
    # an active observability session aggregates machines in-process;
    # the runner must quietly fall back to serial so nothing is lost
    import repro.obs as obs_mod

    session = obs_mod.enable()
    try:
        fig = FigureData("obs-serial", "t", "x", "y")
        pts = [point("mp-server", t, run_counter_benchmark, "mp-server", t,
                     spec=WorkloadSpec(warmup_cycles=2000,
                                       measure_cycles=10_000))
               for t in (1, 2)]
        for p, r in zip(pts, run_sweep(pts, jobs=4)):
            fig.add_point(p.label, p.x, r)
        # machines were observed by the parent-process session: fan-out
        # to workers would have left this empty
        assert len(session.machines) == 2
    finally:
        obs_mod.disable()
