"""Tests for the open-loop traffic / admission-control layer.

Covers the arrival processes, the spec validation, the bounded
admission queue, the retry/backoff/circuit-breaker dispatch policy
(driven by a server that never claims, so every dispatch times out),
and the windowed driver's unbounded-vs-bounded degradation contrast.
"""

import numpy as np
import pytest

from repro.core import MPServer, OpTable, ShmServer
from repro.core.api import DispatchTimeout
from repro.machine import Machine, tile_gx
from repro.objects import LockedCounter
from repro.workload.metrics import RunResult
from repro.workload.openloop import (
    AdmissionQueue,
    AdmissionSpec,
    ArrivalSpec,
    OpenLoopSpec,
    bounded_source,
    bounded_worker,
    run_openloop_workload,
)


# -- arrival processes ------------------------------------------------------

def test_arrival_spec_rejects_bad_process():
    with pytest.raises(ValueError, match="unknown arrival process"):
        ArrivalSpec(process="uniform")


@pytest.mark.parametrize("kw", [
    {"mean_gap_cycles": 0}, {"mean_gap_cycles": -5.0},
    {"process": "bursty", "burst_gap_cycles": 0},
    {"process": "bursty", "burst_dwell_cycles": 0},
    {"process": "bursty", "calm_dwell_cycles": -1},
])
def test_arrival_spec_rejects_bad_numbers(kw):
    with pytest.raises(ValueError):
        ArrivalSpec(**kw)


def test_deterministic_gaps_error_diffusion():
    """Fractional rates must average out exactly, with every gap >= 1."""
    spec = ArrivalSpec(process="deterministic", mean_gap_cycles=2.5)
    rng = np.random.default_rng(0)
    gaps = [g for g, _ in zip(spec.gaps(rng), range(1000))]
    assert all(g >= 1 for g in gaps)
    assert sum(gaps) == pytest.approx(2.5 * 1000, abs=3)
    assert set(gaps) == {2, 3}  # diffusion alternates, never drifts


def test_deterministic_gaps_ignore_rng():
    spec = ArrivalSpec(process="deterministic", mean_gap_cycles=7)
    a = [g for g, _ in zip(spec.gaps(np.random.default_rng(1)), range(50))]
    b = [g for g, _ in zip(spec.gaps(np.random.default_rng(2)), range(50))]
    assert a == b


def test_poisson_gaps_reproducible_and_positive():
    spec = ArrivalSpec(process="poisson", mean_gap_cycles=100)
    a = [g for g, _ in zip(spec.gaps(np.random.default_rng(7)), range(500))]
    b = [g for g, _ in zip(spec.gaps(np.random.default_rng(7)), range(500))]
    assert a == b
    assert min(a) >= 1
    assert np.mean(a) == pytest.approx(100, rel=0.15)


def test_bursty_gaps_mix_two_rates():
    spec = ArrivalSpec(process="bursty", mean_gap_cycles=400,
                       burst_gap_cycles=20, burst_dwell_cycles=2_000,
                       calm_dwell_cycles=2_000)
    rng = np.random.default_rng(3)
    gaps = [g for g, _ in zip(spec.gaps(rng), range(2000))]
    # both regimes must actually appear
    assert sum(1 for g in gaps if g <= 60) > 100
    assert sum(1 for g in gaps if g >= 200) > 10


def test_offered_rate():
    assert ArrivalSpec(mean_gap_cycles=200).offered_rate == pytest.approx(1 / 200)
    bursty = ArrivalSpec(process="bursty", mean_gap_cycles=100,
                         burst_gap_cycles=10, burst_dwell_cycles=1_000,
                         calm_dwell_cycles=3_000)
    # dwell-weighted: (1000/10 + 3000/100) / 4000
    assert bursty.offered_rate == pytest.approx((100 + 30) / 4_000)


# -- spec validation --------------------------------------------------------

def test_admission_unbounded_rejects_capacity():
    with pytest.raises(ValueError, match="no capacity"):
        AdmissionSpec(policy="unbounded", capacity=4)


def test_admission_bad_policy():
    with pytest.raises(ValueError, match="unknown admission policy"):
        AdmissionSpec(policy="reject")


@pytest.mark.parametrize("kw", [
    {"policy": "drop"},                       # missing capacity
    {"policy": "drop", "capacity": 0},
    {"policy": "retry", "capacity": 4},       # missing dispatch timeout
    {"policy": "retry", "capacity": 4, "dispatch_timeout_cycles": 0},
    {"policy": "retry", "capacity": 4, "dispatch_timeout_cycles": 100,
     "max_retries": -1},
    {"policy": "retry", "capacity": 4, "dispatch_timeout_cycles": 100,
     "backoff_base_cycles": 0},
    {"policy": "retry", "capacity": 4, "dispatch_timeout_cycles": 100,
     "backoff_base_cycles": 512, "backoff_cap_cycles": 256},
    {"policy": "drop", "capacity": 4, "dispatch_timeout_cycles": 100},
    {"policy": "drop", "capacity": 4, "breaker_threshold": 2},
    {"policy": "retry", "capacity": 4, "dispatch_timeout_cycles": 100,
     "breaker_threshold": 0},
    {"policy": "retry", "capacity": 4, "dispatch_timeout_cycles": 100,
     "breaker_threshold": 2, "breaker_cooldown_cycles": 0},
    {"policy": "drop", "capacity": 4, "slo_cycles": 0},
])
def test_admission_spec_rejects_inconsistent_combos(kw):
    with pytest.raises(ValueError):
        AdmissionSpec(**kw)


@pytest.mark.parametrize("kw", [
    {"warmup_cycles": -1}, {"measure_cycles": 0}, {"seed": -1},
    {"seed": True}, {"seed": 1.5}, {"depth_sample_cycles": 0},
])
def test_openloop_spec_rejects_bad_timing(kw):
    with pytest.raises(ValueError):
        OpenLoopSpec(**kw)


# -- admission queue --------------------------------------------------------

def test_admission_queue_sheds_at_capacity_and_keeps_fifo():
    m = Machine(tile_gx())
    ctx = m.thread(0)
    q = AdmissionQueue(m, ctx.tid, capacity=2)
    taken = []

    def producer(c):
        yield 10
        assert q.offer(0)
        assert q.offer(1)
        assert not q.offer(2)        # full: shed, never blocks
        assert q.shed == 1
        yield 100                    # consumer drains in the meantime
        assert q.offer(3)
        q.close()

    def consumer(c):
        while True:
            item = yield from q.take()
            if item is None:
                return
            k, t_arr = item
            assert t_arr <= m.now
            taken.append(k)
            yield 30

    m.spawn(ctx, producer(ctx))
    p = m.spawn(ctx, consumer(ctx))
    m.run()
    assert not p.alive
    assert taken == [0, 1, 3]        # FIFO, shed op 2 never surfaces
    assert q.enqueued == 3 and q.shed == 1 and q.depth_peak == 2


def test_admission_queue_unbounded_never_sheds():
    m = Machine(tile_gx())
    ctx = m.thread(0)
    q = AdmissionQueue(m, ctx.tid, capacity=None)
    for k in range(100):
        assert q.offer(k)
    assert q.shed == 0 and len(q) == 100 and q.depth_peak == 100


def test_admission_queue_close_wakes_blocked_taker():
    m = Machine(tile_gx())
    ctx = m.thread(0)
    q = AdmissionQueue(m, ctx.tid, capacity=4)

    def taker(c):
        item = yield from q.take()   # blocks: queue empty
        return item, m.now

    def closer(c):
        yield 500
        q.close()

    p = m.spawn(ctx, taker(ctx))
    m.spawn(ctx, closer(ctx))
    m.run()
    item, t = p.result
    assert item is None and t >= 500


# -- bounded scripts + the retry policy -------------------------------------

def _mp_counter(n_clients):
    m = Machine(tile_gx())
    ot = OpTable()
    prim = MPServer(m, ot, server_tid=0)
    ctr = LockedCounter(prim)
    prim.start()
    ctxs = [m.thread(t) for t in range(1, n_clients + 1)]
    return m, prim, ctr, ctxs


def test_bounded_scripts_complete_exactly_once_unbounded():
    m, prim, ctr, ctxs = _mp_counter(3)
    adm = AdmissionSpec(policy="unbounded")
    arr = ArrivalSpec(process="deterministic", mean_gap_cycles=300)
    done = []
    scripts = []
    for ctx in ctxs:
        q = AdmissionQueue(m, ctx.tid, None)
        rng = np.random.default_rng([1, ctx.tid])
        scripts.append(m.spawn(ctx, bounded_source(ctx, q, arr, rng, 5)))
        scripts.append(m.spawn(
            ctx, bounded_worker(
                ctx, q, prim, ctr._op_inc, adm,
                on_result=lambda c, k, rv, t0, t1: done.append(rv))))

    def coordinator():
        for p in scripts:
            yield from p.join()
        if hasattr(prim, "stop"):
            prim.stop()

    m.sim.spawn(coordinator(), name="coordinator")
    m.run()
    # every arrival completed, and the tickets linearize with no holes
    assert sorted(done) == list(range(15))
    assert ctr.value() == 15


def test_bounded_drop_sheds_are_side_effect_free():
    m, prim, ctr, ctxs = _mp_counter(2)
    adm = AdmissionSpec(policy="drop", capacity=1)
    arr = ArrivalSpec(process="deterministic", mean_gap_cycles=40)
    done, procs = [], []
    queues = []
    for ctx in ctxs:
        q = AdmissionQueue(m, ctx.tid, adm.capacity)
        queues.append(q)
        rng = np.random.default_rng([1, ctx.tid])
        procs.append(m.spawn(ctx, bounded_source(ctx, q, arr, rng, 20)))
        procs.append(m.spawn(
            ctx, bounded_worker(
                ctx, q, prim, ctr._op_inc, adm,
                on_result=lambda c, k, rv, t0, t1: done.append(rv))))

    def coordinator():
        for p in procs:
            yield from p.join()
        if hasattr(prim, "stop"):
            prim.stop()

    m.sim.spawn(coordinator(), name="coordinator")
    m.run()
    shed = sum(q.shed for q in queues)
    assert shed > 0                          # overload actually happened
    assert len(done) + shed == 40            # every arrival accounted for
    assert ctr.value() == len(done)          # shed ops executed nothing
    assert sorted(done) == list(range(len(done)))


def _unclaimed_shm(n_clients=1):
    """Cancellable shm-server whose server thread never starts: every
    timed dispatch expires and is withdrawn (the pure-timeout regime)."""
    m = Machine(tile_gx())
    ot = OpTable()
    prim = ShmServer(m, ot, server_tid=0,
                     client_tids=range(1, n_clients + 1), cancellable=True)
    ctr = LockedCounter(prim)
    ctxs = [m.thread(t) for t in range(1, n_clients + 1)]
    return m, prim, ctr, ctxs


def test_dispatch_timeout_is_side_effect_free_and_restores_inflight():
    m, prim, ctr, (ctx,) = _unclaimed_shm()

    def client(c):
        try:
            yield from prim.apply_op_timed(c, ctr._op_inc, timeout=400)
        except DispatchTimeout as exc:
            return ("timeout", exc.waited >= 400)

    p = m.spawn(ctx, client(ctx))
    m.run()
    assert p.result == ("timeout", True)
    assert ctr.value() == 0
    assert prim.inflight == 0


def test_retry_policy_exhausts_and_sheds_with_backoff():
    m, prim, ctr, (ctx,) = _unclaimed_shm()
    adm = AdmissionSpec(policy="retry", capacity=4,
                        dispatch_timeout_cycles=300, max_retries=2,
                        backoff_base_cycles=64, backoff_cap_cycles=128)
    q = AdmissionQueue(m, ctx.tid, adm.capacity)
    q.offer(0)
    q.close()
    shed = []
    p = m.spawn(ctx, bounded_worker(ctx, q, prim, ctr._op_inc, adm,
                                    on_shed=lambda c, k: shed.append(k)))
    m.run()
    assert not p.alive
    assert shed == [0]               # dropped after initial try + 2 retries
    assert ctr.value() == 0          # provably never executed
    # 3 attempts of >= 300 cycles plus backoffs 64 + 128
    assert m.now >= 3 * 300 + 64 + 128


def test_circuit_breaker_trips_and_half_open_reprobe_retrips():
    m, prim, ctr, (ctx,) = _unclaimed_shm()
    adm = AdmissionSpec(policy="retry", capacity=8,
                        dispatch_timeout_cycles=200, max_retries=1,
                        backoff_base_cycles=32, backoff_cap_cycles=32,
                        breaker_threshold=2, breaker_cooldown_cycles=5_000)
    q = AdmissionQueue(m, ctx.tid, adm.capacity)
    for k in range(3):
        q.offer(k)
    q.close()
    shed = []
    from repro.workload.openloop import _breaker_state, _dispatch
    counters = {"timeouts": 0, "retries": 0, "retry_shed": 0,
                "breaker_trips": 0}
    state = _breaker_state()

    def worker(c):
        while True:
            item = yield from q.take()
            if item is None:
                return
            ok, _ = yield from _dispatch(c, prim, ctr._op_inc, 0, adm,
                                         state, counters)
            if not ok:
                shed.append(item[0])

    m.spawn(ctx, worker(ctx))
    m.run()
    assert shed == [0, 1, 2]
    assert counters["timeouts"] == 6           # 2 attempts per op
    # trips at the threshold, then every half-open probe re-trips
    assert counters["breaker_trips"] >= 3
    # cooldowns were actually served as local spin (no shared-path hammering)
    assert m.now >= 3 * adm.breaker_cooldown_cycles


def test_shm_cancellable_default_untimed_path_still_exact():
    """cancellable=True with a live server and no timeout must behave
    exactly like the plain protocol (claims all taken, none cancelled)."""
    m = Machine(tile_gx())
    ot = OpTable()
    prim = ShmServer(m, ot, server_tid=0, client_tids=range(1, 4),
                     cancellable=True)
    ctr = LockedCounter(prim)
    prim.start()
    ctxs = [m.thread(t) for t in range(1, 4)]
    got = []

    def client(c):
        for _ in range(10):
            v = yield from prim.apply_op(c, ctr._op_inc)
            got.append(v)

    procs = [m.spawn(c, client(c)) for c in ctxs]

    def coordinator():
        for p in procs:
            yield from p.join()
        if hasattr(prim, "stop"):
            prim.stop()

    m.sim.spawn(coordinator(), name="coordinator")
    m.run()
    assert sorted(got) == list(range(30))
    assert ctr.value() == 30
    assert prim.requests_cancelled == 0


def test_shm_cancellable_timeout_then_success_after_server_starts():
    """A request cancelled while the server is wedged must be retryable:
    the retry executes exactly once when the server comes back."""
    m = Machine(tile_gx())
    ot = OpTable()
    prim = ShmServer(m, ot, server_tid=0, client_tids=[1], cancellable=True)
    ctr = LockedCounter(prim)
    ctx = m.thread(1)

    def late_start():
        yield 2_000
        prim.start()

    def client(c):
        timeouts = 0
        while True:
            try:
                v = yield from prim.apply_op_timed(c, ctr._op_inc,
                                                   timeout=600)
                return timeouts, v
            except DispatchTimeout:
                timeouts += 1

    m.sim.spawn(late_start(), name="late-start")
    p = m.spawn(ctx, client(ctx))
    m.sim.run(until=20_000)
    timeouts, v = p.result
    assert timeouts >= 1             # the wedged period produced timeouts
    assert v == 0 and ctr.value() == 1   # ...but exactly one increment


def test_shm_server_skips_withdrawn_claim_of_abandoned_request():
    """A client that cancels and walks away leaves CLAIM=_GONE+seq in the
    channel; the late-starting server must lose the commit CAS and skip
    the request instead of executing it."""
    m = Machine(tile_gx())
    ot = OpTable()
    prim = ShmServer(m, ot, server_tid=0, client_tids=[1], cancellable=True)
    ctr = LockedCounter(prim)
    ctx = m.thread(1)

    def client(c):
        try:
            yield from prim.apply_op_timed(c, ctr._op_inc, timeout=600)
        except DispatchTimeout:
            return "gave-up"

    def late_start():
        yield 2_000                  # well after the client withdrew
        prim.start()

    p = m.spawn(ctx, client(ctx))
    m.sim.spawn(late_start(), name="late-start")
    m.sim.run(until=20_000)
    assert p.result == "gave-up"
    assert ctr.value() == 0              # the abandoned op never executed
    assert prim.requests_cancelled == 1  # and the server saw the withdrawal


# -- the windowed open-loop driver ------------------------------------------

def _run_point(policy, *, seed=42, n=4, gap=20.0):
    m, prim, ctr, ctxs = _mp_counter(n)
    adm = (AdmissionSpec(policy="unbounded", slo_cycles=3_000)
           if policy == "unbounded"
           else AdmissionSpec(policy="drop", capacity=8, slo_cycles=3_000))
    spec = OpenLoopSpec(
        arrivals=ArrivalSpec(process="deterministic", mean_gap_cycles=gap),
        admission=adm, warmup_cycles=5_000, measure_cycles=40_000,
        seed=seed, depth_sample_cycles=500)
    r = run_openloop_workload(m, ctxs, prim, ctr._op_inc, spec, name=policy)
    return r, ctr


def test_unbounded_past_capacity_diverges_bounded_stays_flat():
    """The acceptance criterion: past the knee, unbounded queue depth and
    tail latency grow without bound; bounded-drop pins both."""
    ru, _ = _run_point("unbounded")
    rd, _ = _run_point("drop")

    # unbounded: depth still climbing at window end, tail latency diverging
    assert ru.extra["ol.qdepth_final"] >= ru.extra["ol.qdepth_max"] * 0.9
    assert ru.extra["ol.qdepth_final"] > 10 * rd.extra["ol.qdepth_max"]
    assert ru.p99_latency_cycles > 5 * rd.p99_latency_cycles
    assert ru.extra["ol.shed"] == 0

    # bounded: sheds the excess, keeps the queue and the SLO
    assert rd.extra["ol.qdepth_max"] <= 4 * 8 + 16   # n*capacity + inflight
    assert rd.shed_ops > 0
    assert rd.time_in_slo == 1.0
    assert ru.time_in_slo < 0.5

    # shedding must not cost service capacity: bounded goodput matches
    # the unbounded service rate even though offered load far exceeds it
    assert rd.goodput_mops >= 0.8 * ru.goodput_mops
    assert rd.offered_mops > 1.5 * rd.goodput_mops


def test_openloop_driver_exactly_once_accounting():
    r, ctr = _run_point("drop")
    # ops counted in the window can never exceed the counter's ground
    # truth (warmup + in-flight ops also increment it)
    assert 0 < r.ops <= ctr.value()
    assert r.extra["ol.admitted"] + r.extra["ol.shed"] > 0


def test_openloop_driver_same_seed_bit_identical():
    a, _ = _run_point("drop", seed=7)
    b, _ = _run_point("drop", seed=7)
    assert a.ops == b.ops
    assert a.latency_samples == b.latency_samples
    assert a.extra == b.extra
    assert a.queue_depth_series == b.queue_depth_series


def test_openloop_driver_poisson_seed_changes_traffic():
    def poisson_point(seed):
        m, prim, ctr, ctxs = _mp_counter(2)
        spec = OpenLoopSpec(
            arrivals=ArrivalSpec(process="poisson", mean_gap_cycles=200),
            admission=AdmissionSpec(policy="drop", capacity=4),
            warmup_cycles=2_000, measure_cycles=20_000, seed=seed)
        return run_openloop_workload(m, ctxs, prim, ctr._op_inc, spec)
    a, b = poisson_point(1), poisson_point(2)
    assert a.latency_samples != b.latency_samples


def test_openloop_driver_rejects_empty_ctxs():
    m = Machine(tile_gx())
    ot = OpTable()
    prim = MPServer(m, ot, server_tid=0)
    ctr = LockedCounter(prim)
    prim.start()
    with pytest.raises(ValueError, match="at least one client"):
        run_openloop_workload(m, [], prim, ctr._op_inc, OpenLoopSpec())


# -- RunResult overload extras ----------------------------------------------

def test_runresult_overload_properties_read_extras():
    r = RunResult(name="x", num_threads=2, window_cycles=100_000, ops=500,
                  clock_mhz=1200)
    assert r.p999_latency_cycles == 0.0
    assert r.goodput_mops == r.throughput_mops   # closed-loop fallback
    assert r.offered_mops == 0.0
    assert r.time_in_slo is None
    r.extra.update({"ol.p999_latency": 9_000.0, "ol.offered_mops": 12.0,
                    "ol.goodput_mops": 6.0, "ol.shed": 41.0,
                    "ol.timeouts": 7.0, "ol.retries": 9.0,
                    "ol.time_in_slo": 0.75})
    assert r.p999_latency_cycles == 9_000.0
    assert r.offered_mops == 12.0 and r.goodput_mops == 6.0
    assert r.shed_ops == 41 and r.dispatch_timeouts == 7 and r.retries == 9
    assert r.time_in_slo == 0.75
    s = r.summary()
    assert "offered" in s and "goodput" in s and "shed" in s and "slo" in s


def test_runresult_p999_falls_back_to_samples():
    r = RunResult(name="x", num_threads=1, window_cycles=1_000, ops=1000,
                  clock_mhz=1200)
    r.latency_samples = list(range(1000))
    assert r.p999_latency_cycles == pytest.approx(
        float(np.percentile(np.asarray(r.latency_samples), 99.9)))
