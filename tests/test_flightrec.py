"""Flight recorder: bounded ring, triggers, atomic incident bundles."""

import json
import os

import pytest

import repro.obs as obs
from repro.faults import CrashThread, FaultPlan
from repro.machine import Machine, tile_gx
from repro.obs import SLO
from repro.sim.engine import DeadlockError
from repro.workload import WorkloadSpec
from repro.workload.scenarios import run_counter_benchmark

SPEC = WorkloadSpec(warmup_cycles=5_000, measure_cycles=20_000)


def _machine(**kw):
    with obs.observed(flight=True, **kw) as session:
        m = Machine(tile_gx())
    return m, session.machines[0]


# -- the ring --------------------------------------------------------------

def test_recent_ring_is_bounded():
    _m, ob = _machine(flight_limit=16)
    for i in range(100):
        ob.bus.emit("test.noise", i=i)
    assert len(ob.flight.events) == 16
    # the ring holds the newest tail, oldest first
    assert [f["i"] for _t, _k, f in ob.flight.events] == list(range(84, 100))


def test_flight_limit_validated():
    with pytest.raises(ValueError):
        _machine(flight_limit=0)


# -- triggers --------------------------------------------------------------

def test_proc_kill_event_dumps_incident(tmp_path):
    out = str(tmp_path / "inc")
    _m, ob = _machine(incident_dir=out)
    ob.bus.emit("proc.kill", name="victim-3")
    assert len(ob.flight.incidents) == 1
    doc = ob.flight.incidents[0]
    assert doc["reason"] == "proc.kill" and doc["detail"] == "victim-3"
    # written atomically: the file on disk parses back to the same doc
    (path,) = ob.flight.paths
    assert os.path.exists(path) and not os.path.exists(path + ".tmp")
    with open(path) as f:
        assert json.load(f)["reason"] == "proc.kill"


def test_slo_breach_trigger_sees_monitor_state(tmp_path):
    # wire SLO + flight together on the bus: the breach event must dump
    # a bundle whose slo section already shows the breach (the flight
    # trigger runs after the monitor updated its state)
    slo = SLO("lat", kind="latency", target=10.0, budget=0.5,
              burn_threshold=1.0, short_ticks=1, long_ticks=1)
    _m, ob = _machine(slos=(slo,), incident_dir=str(tmp_path))
    ob.bus.sim.now = 512
    ob.bus.emit("op.end", core=0, tid=0, op=0, start=0, measured=True)
    ob.slo.on_tick(512)
    assert ob.slo.breaches == 1
    assert len(ob.flight.incidents) == 1
    doc = ob.flight.incidents[0]
    assert doc["reason"] == "slo.breach" and doc["detail"] == "lat"
    assert doc["slo"][0]["breached"] is True
    # the bundle's event tail includes the breach event itself
    assert any(k == "slo.breach" for _t, k, _f in doc["events"])


def test_timeout_storm_dumps_once_per_window():
    _m, ob = _machine()
    ob.flight.storm_threshold = 10
    ob.flight.storm_window = 1_000
    for t in range(0, 3_000, 10):   # 100 timeouts per window, sustained
        ob.flight.on_trigger(t, "udn.timeout", {})
    reasons = [d["reason"] for d in ob.flight.incidents]
    assert reasons.count("timeout.storm") == len(reasons)
    # one dump per quiet window, not one per timeout
    assert 1 <= len(reasons) <= 3


def test_sparse_timeouts_do_not_dump():
    _m, ob = _machine()
    ob.flight.storm_threshold = 10
    ob.flight.storm_window = 1_000
    for t in range(0, 100_000, 5_000):   # far apart: never 10 in a window
        ob.flight.on_trigger(t, "dispatch.timeout", {})
    assert ob.flight.incidents == []


def test_max_incidents_caps_disk_but_counts_detections(tmp_path):
    _m, ob = _machine(incident_dir=str(tmp_path))
    ob.flight.max_incidents = 3
    for i in range(10):
        ob.bus.emit("proc.kill", name=f"v{i}")
    assert len(ob.flight.incidents) == 3
    assert len(ob.flight.paths) == 3
    assert ob.flight.detected == 10
    # filenames are unique (recorder id + per-recorder sequence)
    assert len(set(ob.flight.paths)) == 3


# -- end-to-end paths ------------------------------------------------------

def test_fault_plan_crash_dumps_valid_bundle(tmp_path):
    out = str(tmp_path / "inc")
    plan = FaultPlan(seed=1, faults=(
        CrashThread(tid=3, at_cycle=SPEC.warmup_cycles + 5_000),))
    with obs.observed(flight=True, timeseries=True,
                      incident_dir=out) as session:
        r = run_counter_benchmark("mp-server", 5, spec=SPEC, fault_plan=plan)
    (ob,) = session.machines
    assert r.ops > 0
    crash = [d for d in ob.flight.incidents if d["reason"] == "proc.kill"]
    assert len(crash) == 1
    doc = crash[0]
    assert doc["cycle"] == SPEC.warmup_cycles + 5_000
    assert doc["config_fingerprint"] == ob.machine.cfg.fingerprint()
    assert doc["events"]           # ring had traffic before the crash
    assert doc["timeseries"]       # sampler tail rode along
    assert session.incidents() == ob.flight.incidents
    # every path on disk parses as JSON
    for p in ob.flight.paths:
        with open(p) as f:
            json.load(f)


def test_deadlock_dump_from_machine_run():
    with obs.observed(flight=True) as session:
        m = Machine(tile_gx())
        ev = m.sim.event(label="never")

        def stuck():
            yield ev

        m.sim.spawn(stuck(), name="stuck-proc")
        with pytest.raises(DeadlockError):
            m.run()
    (ob,) = session.machines
    (doc,) = ob.flight.incidents
    assert doc["reason"] == "deadlock"
    assert "stuck-proc" in doc["detail"]
