"""Tests for the hardware message-passing fabric (repro.udn)."""

import pytest

from repro.machine import Machine, tile_gx, x86_like


def make_machine(**over):
    return Machine(tile_gx(**over))


def test_send_receive_one_word():
    m = make_machine()
    t0 = m.thread(0)
    t1 = m.thread(1)

    def sender(ctx):
        yield from ctx.send(1, [42])

    def receiver(ctx):
        words = yield from ctx.receive(1)
        return words

    m.spawn(t0, sender(t0))
    p = m.spawn(t1, receiver(t1))
    m.run()
    assert p.result == [42]


def test_multiword_message_order_preserved():
    m = make_machine()
    t0 = m.thread(0)
    t1 = m.thread(1)

    def sender(ctx):
        yield from ctx.send(1, [1, 2, 3])

    def receiver(ctx):
        words = yield from ctx.receive(3)
        return words

    m.spawn(t0, sender(t0))
    p = m.spawn(t1, receiver(t1))
    m.run()
    assert p.result == [1, 2, 3]


def test_messages_from_one_sender_arrive_in_order():
    m = make_machine()
    t0 = m.thread(0)
    t1 = m.thread(1)

    def sender(ctx):
        for i in range(10):
            yield from ctx.send(1, [i])

    def receiver(ctx):
        got = []
        for _ in range(10):
            w = yield from ctx.receive(1)
            got.extend(w)
        return got

    m.spawn(t0, sender(t0))
    p = m.spawn(t1, receiver(t1))
    m.run()
    assert p.result == list(range(10))


def test_receive_blocks_until_arrival():
    m = make_machine()
    t0 = m.thread(0)
    t1 = m.thread(1)

    def sender(ctx):
        yield 500
        yield from ctx.send(1, [7])

    def receiver(ctx):
        w = yield from ctx.receive(1)
        return w[0], m.now

    m.spawn(t0, sender(t0))
    p = m.spawn(t1, receiver(t1))
    m.run()
    v, t = p.result
    assert v == 7
    assert t > 500


def test_receive_k_blocks_until_k_words():
    m = make_machine()
    t0 = m.thread(0)
    t1 = m.thread(1)

    def sender(ctx):
        yield from ctx.send(1, [1])
        yield 400
        yield from ctx.send(1, [2])

    def receiver(ctx):
        w = yield from ctx.receive(2)
        return w, m.now

    m.spawn(t0, sender(t0))
    p = m.spawn(t1, receiver(t1))
    m.run()
    w, t = p.result
    assert w == [1, 2]
    assert t > 400


def test_send_is_asynchronous():
    """The sender must proceed long before the message is delivered."""
    m = make_machine()
    t0 = m.thread(0)
    t35 = m.thread(35)

    def sender(ctx):
        yield from ctx.send(35, [1])
        return m.now

    def receiver(ctx):
        yield from ctx.receive(1)
        return m.now

    ps = m.spawn(t0, sender(t0))
    pr = m.spawn(t35, receiver(t35))
    m.run()
    assert ps.result < pr.result  # sender finished before delivery


def test_receive_from_nonempty_queue_causes_no_stall():
    m = make_machine()
    t0 = m.thread(0)
    t1 = m.thread(1)

    def sender(ctx):
        yield from ctx.send(1, [5, 6, 7])

    def receiver(ctx):
        yield 1000  # message is already queued by now
        s0 = ctx.core.stall_total
        w0 = ctx.core.wait
        yield from ctx.receive(3)
        return ctx.core.stall_total - s0, ctx.core.wait - w0

    m.spawn(t0, sender(t0))
    p = m.spawn(t1, receiver(t1))
    m.run()
    stall, wait = p.result
    assert stall == 0
    assert wait == 0


def test_is_queue_empty():
    m = make_machine()
    t0 = m.thread(0)
    t1 = m.thread(1)

    def sender(ctx):
        yield 100
        yield from ctx.send(1, [1])

    def receiver(ctx):
        empty_before = yield from ctx.is_queue_empty()
        yield 1000
        empty_after = yield from ctx.is_queue_empty()
        yield from ctx.receive(1)
        empty_drained = yield from ctx.is_queue_empty()
        return empty_before, empty_after, empty_drained

    m.spawn(t0, sender(t0))
    p = m.spawn(t1, receiver(t1))
    m.run()
    assert p.result == (True, False, True)


def test_backpressure_blocks_sender_until_receiver_drains():
    m = make_machine(udn_buffer_words=4)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def sender(ctx):
        for _ in range(4):
            yield from ctx.send(1, [1, 1])  # 8 words > 4-word buffer
        return m.now

    def receiver(ctx):
        yield 2000
        got = 0
        while got < 8:
            w = yield from ctx.receive(2)
            got += len(w)

    ps = m.spawn(t0, sender(t0))
    m.spawn(t1, receiver(t1))
    m.run()
    assert ps.result > 2000               # sender had to wait for drains
    assert m.udn.backpressure_cycles > 0


def test_oversized_message_rejected():
    m = make_machine(udn_buffer_words=4)
    t0 = m.thread(0)
    m.thread(1)

    def sender(ctx):
        yield from ctx.send(1, [0] * 5)

    m.spawn(t0, sender(t0))
    with pytest.raises(ValueError, match="never fit"):
        m.run()


def test_empty_message_rejected():
    m = make_machine()
    t0 = m.thread(0)
    m.thread(1)

    def sender(ctx):
        yield from ctx.send(1, [])

    m.spawn(t0, sender(t0))
    with pytest.raises(ValueError, match="empty"):
        m.run()


def test_send_to_unregistered_thread_raises():
    m = make_machine()
    t0 = m.thread(0)

    def sender(ctx):
        yield from ctx.send(99, [1])

    m.spawn(t0, sender(t0))
    with pytest.raises(KeyError, match="not registered"):
        m.run()


def test_oversubscription_demux_queues_are_independent():
    """Four threads on one core, each with its own hardware queue (§6)."""
    m = make_machine()
    receivers = [m.thread(tid, core_id=5, demux=d) for d, tid in enumerate((10, 11, 12, 13))]
    sender = m.thread(0)

    def send_all(ctx):
        for tid in (13, 12, 11, 10):
            yield from ctx.send(tid, [tid * 2])

    def recv(ctx):
        w = yield from ctx.receive(1)
        return w[0]

    procs = [m.spawn(ctx, recv(ctx)) for ctx in receivers]
    m.spawn(sender, send_all(sender))
    m.run()
    assert [p.result for p in procs] == [20, 22, 24, 26]


def test_demux_queue_collision_rejected():
    m = make_machine()
    m.thread(3, core_id=3, demux=0)
    with pytest.raises(ValueError, match="already registered"):
        m.thread(4, core_id=3, demux=0)


def test_x86_profile_has_no_udn():
    m = Machine(x86_like())
    ctx = m.thread(0)
    m.thread(1)

    def sender(c):
        yield from c.send(1, [1])

    m.spawn(ctx, sender(ctx))
    with pytest.raises(RuntimeError, match="no hardware message passing"):
        m.run()


def test_udn_send_charges_only_injection_cost():
    m = make_machine()
    t0 = m.thread(0)
    m.thread(35)

    def sender(ctx):
        t_start = m.now
        yield from ctx.send(35, [1, 2, 3])
        return m.now - t_start

    p = m.spawn(t0, sender(t0))
    m.run()
    assert p.result == m.cfg.udn_send_base + 3 * m.cfg.udn_send_per_word


# ---------------------------------------------------------------------------
# backpressure fairness and timed operations (robustness extensions)
# ---------------------------------------------------------------------------

def test_backpressure_grants_space_in_fifo_order():
    """Regression: notify_all wakeups let a late sender race past an
    earlier blocked one.  Space must be granted in arrival order."""
    m = make_machine(udn_buffer_words=4)
    rcv = m.thread(1)
    senders = [m.thread(tid) for tid in (2, 3, 4)]
    order = []

    def filler(ctx):
        yield from ctx.send(1, [0] * 4)  # fills the buffer exactly

    def blocked_sender(ctx, delay, tag):
        yield delay  # stagger arrival at the full buffer
        yield from ctx.send(1, [tag, tag])
        order.append(tag)

    def receiver(ctx):
        yield 5000  # everyone is queued on the full buffer by now
        got = []
        yield from ctx.receive(4)  # frees 4 words at once
        for _ in range(2):
            w = yield from ctx.receive(2)
            got.append(w[0])
        return got

    m.spawn(senders[0], filler(senders[0]))
    m.spawn(senders[1], blocked_sender(senders[1], 100, 11))
    m.spawn(senders[2], blocked_sender(senders[2], 200, 22))
    p = m.spawn(rcv, receiver(rcv))
    m.run()
    # sender that blocked first completes first AND its words arrive first
    assert order == [11, 22]
    assert p.result == [11, 22]


def test_small_request_cannot_barge_past_larger_blocked_one():
    m = make_machine(udn_buffer_words=4)
    rcv = m.thread(1)
    t2, t3, t4 = (m.thread(t) for t in (2, 3, 4))
    granted = {}

    def filler(ctx):
        yield from ctx.send(1, [0] * 4)

    def big(ctx):
        yield 100
        yield from ctx.send(1, [7] * 3)  # needs 3 words, queues first
        granted["big"] = m.now

    def small(ctx):
        yield 200
        yield from ctx.send(1, [8])  # 1 word would fit sooner, must wait
        granted["small"] = m.now

    def receiver(ctx):
        yield 5000
        yield from ctx.receive(2)  # frees 2 words: enough for small only
        checkpoint = m.now
        yield 500                  # strict FIFO: small must still be queued
        yield from ctx.receive(2)  # 4 words free in total: both proceed
        yield 500
        w = []
        while len(w) < 4:
            w.extend((yield from ctx.receive(1)))
        return checkpoint, w

    m.spawn(t2, filler(t2))
    m.spawn(t3, big(t3))
    m.spawn(t4, small(t4))
    p = m.spawn(rcv, receiver(rcv))
    m.run()
    checkpoint, words = p.result
    # small's single word would have fit after the first drain, but the
    # bigger request queued first -- small may only be granted space once
    # big was (i.e. after the second drain)
    assert granted["small"] > checkpoint + 500
    assert sorted(words) == [7, 7, 7, 8]


def test_receive_timeout_raises_and_consumes_nothing():
    from repro.udn import ReceiveTimeout

    m = make_machine()
    t0 = m.thread(0)
    m.thread(1)

    def receiver(ctx):
        try:
            yield from ctx.receive(1, timeout=300)
        except ReceiveTimeout as exc:
            return ("timeout", m.now, exc.waited)

    p = m.spawn(t0, receiver(t0))
    m.run()
    assert p.result == ("timeout", 300, 300)


def test_receive_timeout_leaves_partial_words_queued():
    from repro.udn import ReceiveTimeout

    m = make_machine()
    t0 = m.thread(0)
    t1 = m.thread(1)

    def sender(ctx):
        yield from ctx.send(1, [5])  # one word; receiver wants two

    def receiver(ctx):
        try:
            yield from ctx.receive(2, timeout=500)
        except ReceiveTimeout:
            pass
        w = yield from ctx.receive(1)  # the queued word is still there
        return w

    m.spawn(t0, sender(t0))
    p = m.spawn(t1, receiver(t1))
    m.run()
    assert p.result == [5]


def test_arrival_in_timeout_cycle_beats_the_timeout():
    """A message arriving in the very cycle the timeout expires must win
    (deterministically), so retries never drop a served response."""
    m = make_machine()
    t0 = m.thread(0)
    t1 = m.thread(1)
    transit = (m.cfg.udn_send_base + m.cfg.udn_send_per_word
               + m.mesh.latency(m.cores[0].node, m.cores[1].node, 1))

    def sender(ctx, fire_at):
        yield fire_at
        yield from ctx.send(1, [9])

    def receiver(ctx, deadline):
        w = yield from ctx.receive(1, timeout=deadline)
        return w

    # arrange delivery exactly at the deadline cycle
    deadline = 400
    p = m.spawn(t1, receiver(t1, deadline))
    m.spawn(t0, sender(t0, deadline - transit))
    m.run()
    assert p.result == [9]


def test_send_timeout_reserves_nothing():
    from repro.udn import SendTimeout

    m = make_machine(udn_buffer_words=4)
    t0 = m.thread(0)
    t1 = m.thread(1)
    t2 = m.thread(2)

    def filler(ctx):
        yield from ctx.send(1, [0] * 4)

    def impatient(ctx):
        yield 100
        try:
            yield from ctx.send(1, [1, 1], timeout=200)
        except SendTimeout:
            return ("timeout", m.now)

    def receiver(ctx):
        yield 5000
        w = yield from ctx.receive(4)
        # queue must hold only the filler's words: the timed-out sender
        # neither delivered nor left a reservation behind
        empty = yield from ctx.is_queue_empty()
        return w, empty

    m.spawn(t0, filler(t0))
    pi = m.spawn(t2, impatient(t2))
    pr = m.spawn(t1, receiver(t1))
    m.run()
    assert pi.result == ("timeout", 300)
    w, empty = pr.result
    assert w == [0, 0, 0, 0] and empty


def test_timed_operations_reject_nonpositive_timeout():
    m = make_machine()
    t0 = m.thread(0)
    m.thread(1)

    def bad_recv(ctx):
        yield from ctx.receive(1, timeout=0)

    m.spawn(t0, bad_recv(t0))
    with pytest.raises(ValueError, match="timeout"):
        m.run()


def test_backpressure_accounted_per_sender_core():
    """Satellite of the overload work: blame attribution needs to know
    *which* sender core congestion stalled, not just the aggregate."""
    m = make_machine(udn_buffer_words=4)
    rcv = m.thread(1)
    t2, t3 = m.thread(2), m.thread(3)
    t5 = m.thread(5)  # never blocked: its core must stay at zero

    def filler(ctx):
        yield from ctx.send(1, [0] * 4)

    def blocked(ctx, delay):
        yield delay
        yield from ctx.send(1, [1, 1])

    def free_rider(ctx):
        yield 10_000  # after the drains: plenty of space, no blocking
        yield from ctx.send(1, [9])

    def receiver(ctx):
        yield 5_000
        got = 0
        while got < 9:
            got += len((yield from ctx.receive(1)))

    m.spawn(t2, filler(t2))
    m.spawn(t2, blocked(t2, 100))
    m.spawn(t3, blocked(t3, 200))
    m.spawn(t5, free_rider(t5))
    m.spawn(rcv, receiver(rcv))
    m.run()
    bp = m.udn.backpressure_by_core
    assert bp[t2.core.cid] > 0
    assert bp[t3.core.cid] > 0
    assert bp[t5.core.cid] == 0
    # the first blocked sender waited longer than the one behind... no:
    # FIFO grants mean the *earlier* sender unblocks first; both waited
    # from their arrival until their grant, so earlier arrival => longer
    assert bp[t2.core.cid] > bp[t3.core.cid] - 200
    assert m.udn.backpressure_cycles == sum(bp)


def _grant_race_machine():
    """Full buffer whose space frees at an exactly known cycle.

    The receiver drains 4 queued words after an idle wait of D cycles;
    `receive` charges its fixed cost before releasing buffer space, so
    the grant lands at exactly D + recv_cost.
    """
    m = make_machine(udn_buffer_words=4)
    D = 2_000
    grant_at = D + m.cfg.udn_recv_base + m.cfg.udn_recv_per_word * 4
    return m, D, grant_at


def test_space_grant_in_send_timeout_cycle_beats_the_timeout():
    """The send-side twin of the arrival-beats-timeout rule: buffer space
    granted in the very cycle the send deadline expires must win."""
    m, D, grant_at = _grant_race_machine()
    t0, t1, t2 = m.thread(0), m.thread(1), m.thread(2)

    def filler(ctx):
        yield from ctx.send(1, [0] * 4)

    def impatient(ctx):
        yield 100
        # deadline == grant cycle, to the cycle
        yield from ctx.send(1, [9, 9], timeout=grant_at - 100)
        return "sent"

    def receiver(ctx):
        yield D
        first = yield from ctx.receive(4)
        rest = []
        while len(rest) < 2:
            rest.extend((yield from ctx.receive(1)))
        return first, rest

    m.spawn(t0, filler(t0))
    pi = m.spawn(t2, impatient(t2))
    pr = m.spawn(t1, receiver(t1))
    m.run()
    assert pi.result == "sent"
    first, rest = pr.result
    assert first == [0, 0, 0, 0] and rest == [9, 9]


def test_send_timeout_one_cycle_before_grant_still_expires():
    """Boundary partner of the grant-wins test: a deadline one cycle
    before the grant must time out (nothing sent, nothing reserved)."""
    from repro.udn import SendTimeout

    m, D, grant_at = _grant_race_machine()
    t0, t1, t2 = m.thread(0), m.thread(1), m.thread(2)

    def filler(ctx):
        yield from ctx.send(1, [0] * 4)

    def impatient(ctx):
        yield 100
        try:
            yield from ctx.send(1, [9, 9], timeout=grant_at - 100 - 1)
        except SendTimeout:
            return ("timeout", m.now)

    def receiver(ctx):
        yield D
        w = yield from ctx.receive(4)
        yield 2_000
        empty = yield from ctx.is_queue_empty()
        return w, empty

    m.spawn(t0, filler(t0))
    pi = m.spawn(t2, impatient(t2))
    pr = m.spawn(t1, receiver(t1))
    m.run()
    assert pi.result == ("timeout", grant_at - 1)
    w, empty = pr.result
    assert w == [0, 0, 0, 0] and empty


def test_send_timeout_withdrawal_keeps_fifo_for_later_sender():
    """A timed-out sender withdrawing from the middle of the reservation
    queue must not disturb the grant order of the senders behind it."""
    from repro.udn import SendTimeout

    m = make_machine(udn_buffer_words=4)
    rcv = m.thread(1)
    t2, t3, t4 = m.thread(2), m.thread(3), m.thread(4)

    def filler(ctx):
        yield from ctx.send(1, [0] * 4)

    def impatient(ctx):
        yield 100
        try:
            yield from ctx.send(1, [7, 7], timeout=300)
        except SendTimeout:
            return "timeout"

    def patient(ctx):
        yield 200  # queues *behind* the timed sender
        yield from ctx.send(1, [8, 8])
        return m.now

    def receiver(ctx):
        yield 5_000
        yield from ctx.receive(4)
        rest = []
        while len(rest) < 2:
            rest.extend((yield from ctx.receive(1)))
        yield 2_000
        empty = yield from ctx.is_queue_empty()
        return rest, empty

    m.spawn(t2, filler(t2))
    pi = m.spawn(t3, impatient(t3))
    pp = m.spawn(t4, patient(t4))
    pr = m.spawn(rcv, receiver(rcv))
    m.run()
    assert pi.result == "timeout"
    assert pp.result > 5_000        # unblocked by the drain, not the withdraw
    rest, empty = pr.result
    # only the patient sender's words ever arrive; the withdrawn ones don't
    assert rest == [8, 8] and empty


def test_policy_delayed_arrival_on_deadline_cycle_still_wins():
    """The explore seam stretches transit; an arrival the policy lands
    exactly on the receive deadline must still beat the timeout."""
    from repro.explore.policy import SchedulePolicy

    class FixedDelay(SchedulePolicy):
        def __init__(self, extra):
            super().__init__()
            self.extra = extra

        def _udn_choice(self, src_node, dst_core, demux, n_words, now):
            return self.extra

    m = make_machine()
    t0, t1 = m.thread(0), m.thread(1)
    inject = m.cfg.udn_send_base + m.cfg.udn_send_per_word
    transit = m.mesh.latency(m.cores[0].node, m.cores[1].node, 1)
    deadline = 900
    # sender fires at t=0: undelayed arrival would be inject + transit;
    # the policy stretches it to land exactly on the deadline cycle
    m.sim.policy = FixedDelay(deadline - inject - transit)

    def sender(ctx):
        yield from ctx.send(1, [3])

    def receiver(ctx):
        w = yield from ctx.receive(1, timeout=deadline)
        return w, m.now

    m.spawn(t0, sender(t0))
    p = m.spawn(t1, receiver(t1))
    m.run()
    w, t = p.result
    assert w == [3] and t >= deadline


def test_transit_jitter_hook_delays_delivery():
    m = make_machine()
    t0 = m.thread(0)
    t1 = m.thread(1)
    m.udn.transit_jitter = lambda s, d, n: 123

    def sender(ctx):
        yield from ctx.send(1, [1])

    def receiver(ctx):
        yield from ctx.receive(1)
        return m.now

    m.spawn(t0, sender(t0))
    p = m.spawn(t1, receiver(t1))
    m.run()
    base = (m.cfg.udn_send_base + m.cfg.udn_send_per_word
            + m.mesh.latency(m.cores[0].node, m.cores[1].node, 1))
    assert p.result >= base + 123
