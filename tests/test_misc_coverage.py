"""Direct tests for small utilities covered only indirectly elsewhere:
the node pool, UDN endpoint management, and renderer edge cases."""

import pytest

from repro.machine import Machine, tile_gx
from repro.objects import NodePool


# -- NodePool ---------------------------------------------------------------

def test_pool_recycles_nodes():
    m = Machine(tile_gx())
    pool = NodePool(m, node_words=2)
    ctx = m.thread(0)

    def prog():
        a = yield from pool.alloc(ctx)
        yield from pool.free(ctx, a)
        b = yield from pool.alloc(ctx)
        return a, b

    p = m.spawn(ctx, prog())
    m.run()
    a, b = p.result
    assert a == b  # recycled
    assert pool.total_allocated == 1


def test_pool_no_recycle_mode():
    m = Machine(tile_gx())
    pool = NodePool(m, node_words=2, recycle=False)
    ctx = m.thread(0)

    def prog():
        a = yield from pool.alloc(ctx)
        yield from pool.free(ctx, a)
        b = yield from pool.alloc(ctx)
        return a, b

    p = m.spawn(ctx, prog())
    m.run()
    a, b = p.result
    assert a != b
    assert pool.total_allocated == 2


def test_pool_charges_local_work_only():
    m = Machine(tile_gx())
    pool = NodePool(m, node_words=2, alloc_cost=5)
    ctx = m.thread(0)

    def prog():
        yield from pool.alloc(ctx)
        return ctx.core.busy, ctx.core.stall_total

    p = m.spawn(ctx, prog())
    m.run()
    busy, stall = p.result
    assert busy == 5
    assert stall == 0


def test_pool_validates_node_words():
    with pytest.raises(ValueError):
        NodePool(Machine(tile_gx()), node_words=0)


# -- UDN endpoint management ---------------------------------------------------

def test_udn_unregister_frees_queue():
    m = Machine(tile_gx())
    m.thread(3, core_id=3, demux=0)
    m.udn.unregister(3)
    # the slot can now be taken by a different thread
    m.udn.register(4, 3, 0)
    assert m.udn.endpoint(4) == (3, 0)
    with pytest.raises(KeyError):
        m.udn.endpoint(3)


def test_udn_unregister_with_pending_messages_rejected():
    m = Machine(tile_gx())
    t0 = m.thread(0)
    m.thread(1)

    def sender(ctx):
        yield from ctx.send(1, [9])

    m.spawn(t0, sender(t0))
    m.run()
    with pytest.raises(RuntimeError, match="pending"):
        m.udn.unregister(1)


def test_udn_register_bounds():
    m = Machine(tile_gx())
    with pytest.raises(ValueError):
        m.udn.register(9, 99, 0)
    with pytest.raises(ValueError):
        m.udn.register(9, 0, 7)


def test_udn_queue_depth_reporting():
    m = Machine(tile_gx())
    t0 = m.thread(0)
    m.thread(1)

    def sender(ctx):
        yield from ctx.send(1, [1, 2, 3])

    m.spawn(t0, sender(t0))
    m.run()
    assert m.udn.queue_depth(1) == 3
    assert m.udn.messages_delivered == 1


# -- contended-mesh UDN delivery path ----------------------------------------------

def test_udn_over_contended_mesh_delivers_in_order():
    m = Machine(tile_gx(contended_noc=True))
    t0 = m.thread(0)
    t1 = m.thread(35)
    got = []

    def sender(ctx):
        for i in range(5):
            yield from ctx.send(35, [i, i + 100])

    def receiver(ctx):
        for _ in range(5):
            w = yield from ctx.receive(2)
            got.append(tuple(w))

    m.spawn(t0, sender(t0))
    m.spawn(t1, receiver(t1))
    m.run()
    assert got == [(i, i + 100) for i in range(5)]
    assert m.contended_mesh.packets_delivered >= 5
