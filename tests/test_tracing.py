"""Tests for the tracing subsystem (TracedCtx proxy + timeline renderer)."""


from repro.core import MPServer, OpTable
from repro.machine import Machine, tile_gx
from repro.sim.tracing import Trace, TracedCtx, render_timeline


def test_span_duration_and_trace_queries():
    tr = Trace()
    tr.add(0, "load", 0, 30)
    tr.add(0, "work", 30, 40)
    tr.add(1, "send", 5, 10)
    assert len(tr) == 3
    assert [s.kind for s in tr.for_thread(0)] == ["load", "work"]
    assert tr.by_kind() == {"load": 30, "work": 10, "send": 5}
    w = tr.window(8, 32)
    assert len(w.spans) == 3  # all overlap [8, 32)
    assert len(tr.window(100, 200).spans) == 0


def test_traced_ctx_records_memory_ops():
    m = Machine(tile_gx())
    trace = Trace()
    ctx = TracedCtx(m.thread(0), trace)
    a = m.mem.alloc(1)

    def prog():
        yield from ctx.store(a, 5)
        v = yield from ctx.load(a)
        yield from ctx.work(10)
        yield from ctx.faa(a, 1)
        yield from ctx.fence()
        return v

    p = m.sim.spawn(prog())
    m.run()
    assert p.result == 5
    kinds = [s.kind for s in trace.spans]
    assert kinds == ["store", "load", "work", "faa", "fence"]
    assert all(s.end >= s.start for s in trace.spans)
    assert trace.spans[2].duration == 10


def test_traced_ctx_identity_attributes():
    m = Machine(tile_gx())
    raw = m.thread(3)
    ctx = TracedCtx(raw, Trace())
    assert ctx.tid == 3
    assert ctx.core is raw.core
    assert ctx.machine is m


def test_traced_ctx_works_with_real_primitive():
    """A TracedCtx drives a full MP-SERVER round trip transparently."""
    m = Machine(tile_gx())
    table = OpTable()
    a = m.mem.alloc(1)

    def body(c, arg):
        v = yield from c.load(a)
        yield from c.store(a, v + arg)
        return v + arg

    op = table.register(body)
    prim = MPServer(m, table, server_tid=0)
    prim.start()
    trace = Trace()
    ctx = TracedCtx(m.thread(1), trace)

    def client():
        r = yield from prim.apply_op(ctx, op, 7)
        return r

    p = m.spawn(ctx._ctx, client())
    m.run()
    assert p.result == 7
    kinds = [s.kind for s in trace.spans]
    assert kinds == ["send", "receive"]
    # the receive span covers the waiting time for the response
    assert trace.spans[1].duration > 0


def test_render_timeline_basic():
    tr = Trace()
    tr.add(0, "load", 0, 50)
    tr.add(0, "work", 50, 100)
    tr.add(1, "send", 0, 10)
    tr.add(1, "receive", 10, 100)
    out = render_timeline(tr, width=20)
    assert "t0" in out and "t1" in out
    assert "legend:" in out
    assert "cycles by kind:" in out
    # thread 0's row has both glyphs
    row0 = [l for l in out.splitlines() if l.startswith("t0")][0]
    assert "r" in row0 and "#" in row0


def test_render_timeline_empty():
    assert render_timeline(Trace()) == "[empty trace]"


def test_render_timeline_window_and_tids():
    tr = Trace()
    tr.add(0, "work", 0, 1000)
    tr.add(5, "work", 0, 1000)
    out = render_timeline(tr, start=0, end=500, tids=[5])
    assert "t5" in out and "t0 " not in out


def test_window_clips_span_endpoints():
    """Regression: window() must clip, not keep whole overlapping spans.

    A span straddling the boundary used to be kept in full, inflating
    by_kind() totals beyond the window length itself.
    """
    tr = Trace()
    tr.add(0, "work", 0, 100)     # straddles both edges of [40, 60)
    tr.add(0, "load", 50, 200)    # straddles the right edge
    w = tr.window(40, 60)
    assert len(w.spans) == 2
    assert (w.spans[0].start, w.spans[0].end) == (40, 60)
    assert (w.spans[1].start, w.spans[1].end) == (50, 60)
    totals = w.by_kind()
    assert totals == {"work": 20, "load": 10}
    # totals can never exceed window length per thread any more
    assert sum(totals.values()) <= (60 - 40) * 2


def test_window_keeps_interior_zero_length_spans():
    tr = Trace()
    tr.add(0, "probe", 10, 10)   # zero-length, interior
    tr.add(0, "probe", 20, 20)   # zero-length, at the window start edge
    tr.add(0, "probe", 30, 30)   # zero-length, at the (exclusive) end edge
    w = tr.window(20, 30)
    # [20, 30): the t=20 one is inside, t=30 is not, t=10 is before
    assert [(s.start, s.end) for s in w.spans] == [(20, 20)]


def test_render_timeline_zero_length_at_window_boundary():
    """A zero-length op at the window edge must not crash or vanish."""
    tr = Trace()
    tr.add(0, "work", 0, 100)
    tr.add(1, "probe", 0, 0)     # zero-length at the very start
    tr.add(2, "probe", 100, 100)  # zero-length at the end boundary
    out = render_timeline(tr, start=0, end=100, width=20)
    row1 = [ln for ln in out.splitlines() if ln.startswith("t1")][0]
    assert "?" in row1  # the probe glyph appears as a 1-cycle dot
    # the end-boundary op is outside [0, 100) -- row renders but stays blank
    row2 = [ln for ln in out.splitlines() if ln.startswith("t2")][0]
    assert "?" not in row2


def test_render_timeline_explicit_tids_filter_and_order():
    tr = Trace()
    tr.add(0, "work", 0, 10)
    tr.add(1, "load", 0, 10)
    tr.add(2, "send", 0, 10)
    out = render_timeline(tr, tids=[2, 0], width=10)
    rows = [ln for ln in out.splitlines()
            if ln.startswith("t") and ln[1].isdigit()]
    # only the requested threads, in the requested order
    assert rows[0].startswith("t2")
    assert rows[1].startswith("t0")
    assert not any(ln.startswith("t1") for ln in rows)


def test_render_timeline_bucket_width_one():
    """width >= span length: one column per cycle, no div-by-zero."""
    tr = Trace()
    tr.add(0, "load", 0, 3)
    tr.add(0, "work", 3, 6)
    out = render_timeline(tr, width=100)
    assert "one column = 1 cycles" in out
    row = [ln for ln in out.splitlines() if ln.startswith("t0")][0]
    body = row.split("|")[1]
    assert body.startswith("rrr###")
