"""Tests for big-machine support: mesh profiles to 32x32, directory
footprint scaling, lazy-entry reclamation, and the 256-core explore
scenarios."""

import pytest

from repro.machine import Machine, mesh_profile, tile_gx
from repro.machine.config import (MAX_MESH_DIM, MachineConfig,
                                  controller_nodes_for_mesh)
from repro.mem.sharers import ENTRY_BASE_BYTES


# -- mesh profiles ---------------------------------------------------------

def test_mesh_profile_6x6_is_tile_gx():
    """At the paper's mesh size the profile IS tile_gx: same name, same
    fingerprint, so 36-core scale points line up with every fig3
    figure (and with the committed BENCH baselines)."""
    assert mesh_profile(6, 6).fingerprint() == tile_gx().fingerprint()
    assert mesh_profile(6, 6).name == tile_gx().name


def test_mesh_profile_carries_calibration_constants():
    big = mesh_profile(32, 32)
    small = tile_gx()
    assert big.num_cores == 1024
    assert (big.mesh_width, big.mesh_height) == (32, 32)
    # identical per-event cost constants: only the geometry scales
    for f in ("clock_mhz", "c_hit", "c_remote_base", "noc_per_hop",
              "udn_send_base", "c_atomic_service"):
        assert getattr(big, f) == getattr(small, f), f


def test_controller_placement_reproduces_tile_gx_at_6x6():
    assert tuple(sorted(controller_nodes_for_mesh(6, 6))) == \
        tuple(sorted(tile_gx().memory_controller_nodes))


@pytest.mark.parametrize("w,h", [(8, 8), (16, 16), (32, 32), (8, 3)])
def test_controller_placement_valid_and_on_edges(w, h):
    nodes = controller_nodes_for_mesh(w, h)
    assert len(nodes) == len(set(nodes))
    for n in nodes:
        assert 0 <= n < w * h
        row = n // w
        assert row in (0, h - 1)          # top or bottom edge


@pytest.mark.parametrize("n", [64, 256, 1024])
def test_big_meshes_validate_and_build(n):
    side = int(n ** 0.5)
    cfg = mesh_profile(side, side)
    cfg.validate()
    m = Machine(cfg)
    assert len(m.cores) == n


def test_meshes_beyond_32x32_are_rejected():
    with pytest.raises(ValueError, match="32x32"):
        mesh_profile(33, 33).validate()
    with pytest.raises(ValueError, match="32x32"):
        mesh_profile(MAX_MESH_DIM + 1, 4).validate()


def test_mesh_profile_overrides_pass_through():
    cfg = mesh_profile(8, 8, udn_send_base=9)
    assert isinstance(cfg, MachineConfig)
    assert cfg.udn_send_base == 9


# -- directory footprint scaling -------------------------------------------

def _run_counter(cfg, nthreads, iters=40):
    """All threads hammer one counter line via controller atomics."""
    machine = Machine(cfg)
    addr = machine.mem.alloc(1, isolated=True)
    stride = max(1, cfg.num_cores // nthreads)

    def prog(ctx):
        for _ in range(iters):
            yield from ctx.faa(addr, 1)
            v = yield from ctx.load(addr)
            assert v >= 0

    for t in range(nthreads):
        ctx = machine.thread(t, core_id=(t * stride) % cfg.num_cores)
        machine.spawn(ctx, prog(ctx))
    machine.run()
    return machine


def test_directory_footprint_tracks_working_set_not_core_count():
    """The same contended-counter workload on 36 vs 1024 cores: the
    directory's bookkeeping must track the hot working set (one line +
    participants), nowhere near the 28x the core count grew by."""
    small = _run_counter(tile_gx(), nthreads=8)
    big = _run_counter(mesh_profile(32, 32), nthreads=8)
    sb = small.mem.directory_stats()
    bb = big.mem.directory_stats()
    assert bb["entries"] == sb["entries"]
    assert bb["nominal_bytes"] <= 2 * sb["nominal_bytes"]


def test_directory_stats_shape():
    m = _run_counter(tile_gx(), nthreads=4)
    st = m.mem.directory_stats()
    assert set(st) == {"entries", "peak_entries", "nominal_bytes",
                       "max_line_bytes"}
    assert st["peak_entries"] >= st["entries"] >= 1
    assert st["max_line_bytes"] >= ENTRY_BASE_BYTES
    assert st["nominal_bytes"] >= st["entries"] * ENTRY_BASE_BYTES


def test_invalidate_to_clean_reclaims_entries():
    """Controller atomics invalidate every cached copy; a line whose
    entry ends up idle and empty must be dropped from the directory
    (this is what keeps long runs from accreting dead entries)."""
    machine = Machine(tile_gx())
    addrs = [machine.mem.alloc(1, isolated=True) for _ in range(6)]

    def prog(ctx):
        for a in addrs:
            yield from ctx.load(a)          # materializes the entry
        for a in addrs:
            yield from ctx.faa(a, 1)        # controller rmw invalidates

    ctx = machine.thread(0)
    machine.spawn(ctx, prog(ctx))
    machine.run()
    st = machine.mem.directory_stats()
    assert st["peak_entries"] >= len(addrs)
    assert st["entries"] < st["peak_entries"]
    # the values survive reclamation -- only bookkeeping is dropped
    assert [machine.mem.peek(a) for a in addrs] == [1] * len(addrs)


# -- 256-core explore scenarios --------------------------------------------

def test_explore_256core_scenarios_pass_under_random_walk():
    from repro.explore.policy import RandomWalkPolicy
    from repro.explore.scenarios import run_scenario, scenario_by_id

    for sid in ("HybComb/counter@256", "mp-server-ft/msqueue@256crash"):
        scn = scenario_by_id(sid)
        assert scn.mesh == (16, 16)
        out = run_scenario(scn)
        assert out.ok, f"{sid} default schedule: {out.kind}: {out.detail}"
        for seed in (1, 2):
            out = run_scenario(scn, RandomWalkPolicy(seed=seed))
            assert out.ok, f"{sid} seed {seed}: {out.kind}: {out.detail}"


def test_explore_replay_determinism_at_256():
    """Same scenario + same policy decisions = bit-identical history,
    on the big mesh too (what makes 256-core repro bundles replayable)."""
    from repro.explore.policy import RandomWalkPolicy, ReplayPolicy
    from repro.explore.scenarios import run_scenario, scenario_by_id

    scn = scenario_by_id("HybComb/counter@256")
    first = run_scenario(scn, RandomWalkPolicy(seed=7))
    again = run_scenario(scn, ReplayPolicy(first.trace))
    assert again.history == first.history
    assert again.events == first.events
