"""Engine v3 acceptance tests: batched advancement edge cases and
determinism proofs.

The v3 rewrite (``repro.sim._engine_core``) batches cycle advancement:
the clock jumps to the next occupied cycle in one step and drains the
whole cycle in one bucket pass.  These tests pin the places where the
jump interacts with other due-points -- run horizons, the telemetry
sample hook, and timeout deadlines -- and prove the rewrite changed
*nothing* observable: the pre-rewrite golden fingerprint still holds
with observability sampling layered on, and schedule-exploration traces
recorded on the PR4 engine replay bit-identically on v3.
"""

import json
import os

from repro.explore import ReplayPolicy, run_scenario, scenario_by_id
from repro.sim.engine import IS_COMPILED, Interrupt, Simulator, WaitTimer
from repro.sim.resources import Resource

# -- horizon / idle-gap edge cases -------------------------------------------


def test_run_until_inside_collapsed_idle_gap():
    """run(until) parks the clock mid-gap; later runs resume exactly."""
    sim = Simulator()
    fired = []

    def worker():
        yield 1000
        fired.append(sim.now)

    sim.spawn(worker())
    sim.run(until=400)
    assert sim.now == 400 and fired == []
    sim.run(until=999)
    assert sim.now == 999 and fired == []
    sim.run()
    assert fired == [1000] and sim.now == 1000


def test_sample_hook_due_exactly_at_jump_target():
    """A jump landing exactly on a sample boundary fires one tick there."""
    sim = Simulator()
    ticks = []

    def worker():
        yield 100
        yield 100

    sim.spawn(worker())
    sim.set_sample_hook(100, ticks.append)
    sim.run()
    assert ticks == [100, 200]


def test_sample_hook_collapses_skipped_boundaries_to_one_tick():
    """A jump across several boundaries samples once, at the jump target."""
    sim = Simulator()
    ticks = []

    def worker():
        yield 300   # crosses boundaries 100, 200, 300: one tick at 300
        yield 50    # 350: no boundary crossed
        yield 250   # 600 crosses 400, 500, 600: one tick at 600

    sim.spawn(worker())
    sim.set_sample_hook(100, ticks.append)
    sim.run()
    assert ticks == [300, 600]


def test_sample_hook_fires_at_horizon_inside_gap():
    """Stopping mid-gap still reconciles a due sample at the horizon."""
    sim = Simulator()
    ticks = []

    def worker():
        yield 1000

    sim.spawn(worker())
    sim.set_sample_hook(100, ticks.append)
    sim.run(until=450)
    assert sim.now == 450 and ticks == [450]
    sim.run()
    assert ticks == [450, 1000]


def test_wait_timer_deadline_inside_skipped_gap():
    """A timeout deadline is its own due-point: the jump cannot skip it."""
    sim = Simulator()
    outcome = []

    def sleeper():
        yield 5000

    def waiter():
        ev = sim.event("never")
        timer = WaitTimer(sim, sim.current, 300)
        try:
            yield ev
        except Interrupt as exc:
            outcome.append((sim.now, exc.cause is timer))
        finally:
            timer.disarm()

    sim.spawn(sleeper())
    sim.spawn(waiter())
    sim.run()
    assert outcome == [(300, True)]
    assert sim.now == 5000


def test_udn_receive_timeout_deadline_inside_skipped_gap():
    """UDN receive timeout expires on time while the rest of the
    machine sleeps far past it."""
    from repro.machine import Machine, tile_gx
    from repro.udn import ReceiveTimeout

    m = Machine(tile_gx())
    t0 = m.thread(0)
    t1 = m.thread(1)

    def receiver(ctx):
        try:
            yield from ctx.receive(1, timeout=200)
        except ReceiveTimeout as exc:
            return ("timeout", m.now, exc.waited)

    def sleeper(ctx):
        yield 9000

    p = m.spawn(t0, receiver(t0))
    m.spawn(t1, sleeper(t1))
    m.run()
    assert p.result == ("timeout", 200, 200)


# -- Resource.acquire_timeout (admission deadlines) --------------------------


def test_resource_acquire_timeout_expires_inside_idle_gap():
    sim = Simulator()
    res = Resource(sim)
    got = []

    def holder():
        yield from res.acquire()
        yield 10_000
        res.release()

    def contender():
        ok = yield from res.acquire_timeout(250)
        got.append((sim.now, ok))

    sim.spawn(holder())
    sim.spawn(contender())
    sim.run()
    assert got == [(250, False)]
    assert res.queue_length == 0  # the timed-out request was withdrawn
    assert sim.now == 10_000


def test_resource_acquire_timeout_grant_in_deadline_cycle_wins():
    """Same deterministic rule as UDN timeouts: arrival beats expiry."""
    sim = Simulator()
    res = Resource(sim)
    got = []

    def holder():
        yield from res.acquire()
        yield 300
        res.release()

    def contender():
        ok = yield from res.acquire_timeout(300)
        got.append((sim.now, ok))
        res.release()

    sim.spawn(holder())
    sim.spawn(contender())
    sim.run()
    assert got == [(300, True)]
    assert res.in_use == 0


def test_resource_acquire_timeout_fast_path_and_validation():
    import pytest

    sim = Simulator()
    res = Resource(sim)
    got = []

    def proc():
        ok = yield from res.acquire_timeout(10)
        got.append(ok)
        res.release()

    sim.spawn(proc())
    sim.run()
    assert got == [True] and res.in_use == 0

    def bad():
        yield from res.acquire_timeout(0)

    sim2 = Simulator()
    res2 = Resource(sim2)
    sim2.spawn(bad())
    with pytest.raises(ValueError, match="timeout"):
        sim2.run()


# -- determinism proofs ------------------------------------------------------


def test_golden_fingerprint_unchanged_by_sampling():
    """Time-series sampling hooks the batched clock; it must not move
    one simulated number.  Observability itself (bus + counters) adds
    deterministic per-op register fields to the figure, so the sampling
    proof compares obs-with-sampling against obs-without-sampling:
    identical fingerprints over *every* simulated field.  (Sampling and
    obs both fully off is pinned separately against the pre-rewrite
    golden by tests/test_parallel.py.)"""
    import repro.obs as obs_mod
    from tests.test_parallel import _golden_figure

    with obs_mod.observed():
        base = _golden_figure()
    with obs_mod.observed(timeseries=True, sample_every=512):
        sampled = _golden_figure()
    assert sampled.fingerprint() == base.fingerprint()


def test_pre_v3_explore_traces_replay_identically():
    """Schedule traces recorded on the PR4 engine are still the
    schedule: replaying them on v3 reproduces every run exactly --
    verdict, event count, linearization history and decision trace."""
    path = os.path.join(os.path.dirname(__file__), "data",
                        "explore_pre_v3_replay.json")
    with open(path) as f:
        doc = json.load(f)
    assert doc["format"] == "pre-v3-replay-fixture"
    assert doc["runs"], "empty fixture"
    for rec in doc["runs"]:
        scn = scenario_by_id(rec["scenario"])
        out = run_scenario(scn, ReplayPolicy(
            [(k, v) for k, v in rec["trace"]]))
        assert out.kind == rec["kind"], rec["scenario"]
        assert out.events == rec["events"], rec["scenario"]
        assert out.forced_choices == rec["forced_choices"], rec["scenario"]
        # JSON round-trip normalizes tuples to lists on both sides
        assert json.loads(json.dumps(out.history)) == rec["history"]
        assert json.loads(json.dumps(out.trace)) == rec["trace"]


def test_is_compiled_flag_reflects_module_form():
    from repro.sim import _engine_core

    assert isinstance(IS_COMPILED, bool)
    assert IS_COMPILED == (not _engine_core.__file__.endswith(".py"))
    # under plain CPython (the tier-1 environment) the core is source
    if _engine_core.__file__.endswith(".py"):
        assert IS_COMPILED is False
