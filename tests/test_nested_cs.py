"""Nested critical sections across MP-SERVERs (the RCL feature).

A critical section running on server A invokes an operation guarded by
server B through A's nested-client queue.  The composite operation must
remain atomic with respect to A's other clients, and B's state must
reflect every nested call exactly once.
"""


from repro.core import MPServer, OpTable
from repro.machine import Machine, tile_gx
from repro.objects import EMPTY, OneLockMSQueue


def build_nested_pair(machine):
    """Server A: a counter whose increment also logs to a queue on B."""
    table_a = OpTable()
    table_b = OpTable()
    prim_a = MPServer(machine, table_a, server_tid=0, server_core=0, nested_tid=100)
    prim_b = MPServer(machine, table_b, server_tid=1, server_core=1)
    log = OneLockMSQueue(prim_b)
    counter_addr = machine.mem.alloc(1, isolated=True)

    def inc_and_log(ctx, arg):
        # ctx is server A's context; the body nests into server B
        v = yield from ctx.load(counter_addr)
        yield from ctx.store(counter_addr, v + 1)
        yield from log.enqueue(prim_a.nested_ctx, v)
        return v

    op_inc = table_a.register(inc_and_log)
    prim_a.start()
    prim_b.start()
    return prim_a, prim_b, log, counter_addr, op_inc


def test_nested_ctx_uses_separate_queue():
    m = Machine(tile_gx())
    prim = MPServer(m, OpTable(), server_tid=0, nested_tid=50)
    assert prim.nested_ctx is not None
    assert prim.nested_ctx.core.cid == prim.server_ctx.core.cid
    assert m.udn.endpoint(0) == (0, 0)
    assert m.udn.endpoint(50) == (0, 1)


def test_nested_call_single_client():
    m = Machine(tile_gx())
    prim_a, prim_b, log, counter_addr, op_inc = build_nested_pair(m)
    ctx = m.thread(2)

    def client():
        out = []
        for _ in range(5):
            v = yield from prim_a.apply_op(ctx, op_inc, 0)
            out.append(v)
        return out

    p = m.spawn(ctx, client())
    m.run()
    assert p.result == [0, 1, 2, 3, 4]
    assert log.drain_to_list() == [0, 1, 2, 3, 4]


def test_nested_calls_stay_atomic_under_contention():
    """Tickets unique AND the log on server B records them in ticket
    order (server A's CS is atomic end to end, including the nested
    enqueue)."""
    m = Machine(tile_gx())
    prim_a, prim_b, log, counter_addr, op_inc = build_nested_pair(m)
    tickets = []

    def client(ctx):
        for _ in range(15):
            v = yield from prim_a.apply_op(ctx, op_inc, 0)
            tickets.append(v)
            yield from ctx.work(ctx.tid * 5 % 31)

    for t in range(2, 10):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx))
    m.run()
    n = 8 * 15
    assert sorted(tickets) == list(range(n))
    assert m.mem.peek(counter_addr) == n
    # the log preserves the order in which the CSes executed
    assert log.drain_to_list() == list(range(n))


def test_nested_server_can_also_serve_direct_clients():
    """Server B handles both nested calls from A and direct clients."""
    m = Machine(tile_gx())
    prim_a, prim_b, log, counter_addr, op_inc = build_nested_pair(m)
    direct_deqs = []

    def through_a(ctx):
        for _ in range(10):
            yield from prim_a.apply_op(ctx, op_inc, 0)
            yield from ctx.work(7)

    def direct_b(ctx):
        got = 0
        while got < 10:
            v = yield from log.dequeue(ctx)
            if v != EMPTY:
                direct_deqs.append(v)
                got += 1
            else:
                yield from ctx.work(40)

    c1 = m.thread(2)
    c2 = m.thread(3)
    m.spawn(c1, through_a(c1))
    m.spawn(c2, direct_b(c2))
    m.run()
    # FIFO: the dequeued tickets come out in enqueue (= ticket) order
    assert direct_deqs == sorted(direct_deqs)
    assert len(direct_deqs) == 10
