"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.sim import Event, Interrupt, Simulator
from repro.sim.engine import all_of


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_delay_advances_clock():
    sim = Simulator()

    def proc():
        yield 10
        yield 5
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    assert sim.now == 15
    assert p.result == 15


def test_zero_delay_is_legal():
    sim = Simulator()

    def proc():
        yield 0
        return "done"

    p = sim.spawn(proc())
    sim.run()
    assert p.result == "done"
    assert sim.now == 0


def test_fifo_order_for_simultaneous_events():
    sim = Simulator()
    order = []

    def proc(name):
        yield 10
        order.append(name)

    for name in ("a", "b", "c"):
        sim.spawn(proc(name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_processes_interleave_by_time():
    sim = Simulator()
    trace = []

    def slow():
        yield 10
        trace.append(("slow", sim.now))

    def fast():
        yield 3
        trace.append(("fast", sim.now))
        yield 3
        trace.append(("fast", sim.now))

    sim.spawn(slow())
    sim.spawn(fast())
    sim.run()
    assert trace == [("fast", 3), ("fast", 6), ("slow", 10)]


def test_event_wakes_all_waiters_with_value():
    sim = Simulator()
    ev = Event(sim)
    got = []

    def waiter():
        v = yield ev
        got.append((sim.now, v))

    def trigger():
        yield 7
        ev.trigger("payload")

    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert got == [(7, "payload"), (7, "payload")]


def test_already_triggered_event_resumes_immediately():
    sim = Simulator()
    ev = Event(sim)
    ev.trigger(42)

    def waiter():
        v = yield ev
        return v

    p = sim.spawn(waiter())
    sim.run()
    assert p.result == 42


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = Event(sim)
    ev.trigger()
    with pytest.raises(RuntimeError):
        ev.trigger()


def test_join_returns_result():
    sim = Simulator()

    def child():
        yield 5
        return "child-result"

    def parent():
        c = sim.spawn(child())
        r = yield from c.join()
        return (sim.now, r)

    p = sim.spawn(parent())
    sim.run()
    assert p.result == (5, "child-result")


def test_join_on_finished_process():
    sim = Simulator()

    def child():
        yield 1
        return 99

    def parent(c):
        yield 10
        r = yield from c.join()
        return r

    c = sim.spawn(child())
    p = sim.spawn(parent(c))
    sim.run()
    assert p.result == 99


def test_all_of_collects_results_in_order():
    sim = Simulator()

    def child(n):
        yield n
        return n * n

    def parent():
        procs = [sim.spawn(child(n)) for n in (5, 1, 3)]
        results = yield from all_of(sim, procs)
        return results

    p = sim.spawn(parent())
    sim.run()
    assert p.result == [25, 1, 9]


def test_run_until_leaves_future_events_queued():
    sim = Simulator()
    hits = []

    def proc():
        yield 10
        hits.append(sim.now)
        yield 10
        hits.append(sim.now)

    sim.spawn(proc())
    sim.run(until=15)
    assert hits == [10]
    assert sim.now == 15
    sim.run()
    assert hits == [10, 20]


def test_run_until_with_no_events_advances_clock():
    sim = Simulator()
    sim.run(until=100)
    assert sim.now == 100


def test_call_after_callback():
    sim = Simulator()
    fired = []
    sim.call_after(25, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [25]


def test_call_at_in_past_raises():
    sim = Simulator()

    def proc():
        yield 10
        sim.call_at(5, lambda: None)

    sim.spawn(proc())
    with pytest.raises(ValueError):
        sim.run()


def test_interrupt_blocked_process():
    sim = Simulator()
    ev = Event(sim)

    def victim():
        try:
            yield ev
            return "not-interrupted"
        except Interrupt as exc:
            return ("interrupted", exc.cause, sim.now)

    def attacker(v):
        yield 4
        v.interrupt("timeout")

    v = sim.spawn(victim())
    sim.spawn(attacker(v))
    sim.run()
    assert v.result == ("interrupted", "timeout", 4)
    # the event's waiter list must not retain the interrupted process
    ev.trigger()
    sim.run()


def test_process_exception_propagates():
    sim = Simulator()

    def bad():
        yield 1
        raise ValueError("boom")

    sim.spawn(bad())
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_unsupported_effect_raises_typeerror():
    sim = Simulator()

    def bad():
        yield "nonsense"

    sim.spawn(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_max_events_guard():
    sim = Simulator(max_events=10)

    def spinner():
        while True:
            yield 1

    sim.spawn(spinner())
    with pytest.raises(RuntimeError, match="exceeded"):
        sim.run()


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        trace = []

        def proc(name, period):
            for _ in range(5):
                yield period
                trace.append((name, sim.now))

        sim.spawn(proc("a", 3))
        sim.spawn(proc("b", 3))
        sim.spawn(proc("c", 7))
        sim.run()
        return trace

    assert build() == build()


# ---------------------------------------------------------------------------
# fault semantics: generation-guarded resumption, kill, deadlock detection
# ---------------------------------------------------------------------------

def test_interrupt_during_int_sleep_steps_exactly_once():
    """Regression: interrupting a process sleeping on an ``int`` delay used
    to leave the stale sleep-expiry entry in the heap, stepping the
    generator a second time."""
    sim = Simulator()
    resumes = []

    def victim():
        try:
            yield 100  # plain int sleep, no Event involved
        except Interrupt as exc:
            resumes.append(("interrupted", sim.now, exc.cause))
        yield 50
        resumes.append(("slept", sim.now))

    def attacker(v):
        yield 10
        v.interrupt("preempt")

    v = sim.spawn(victim())
    sim.spawn(attacker(v))
    sim.run()
    # one interrupt at t=10, then exactly one resume of the follow-up sleep
    assert resumes == [("interrupted", 10, "preempt"), ("slept", 60)]
    assert sim.now == 60  # the stale wakeup at t=100 must not exist


def test_interrupt_after_event_trigger_same_cycle():
    """An interrupt still lands when the awaited event already triggered
    but the process has not stepped yet (wakeup in flight)."""
    sim = Simulator()
    ev = Event(sim)
    out = []

    def victim():
        try:
            v = yield ev
            out.append(("value", v))
        except Interrupt:
            out.append(("interrupted", sim.now))

    def meddler(v):
        yield 5
        ev.trigger("late")
        v.interrupt("now")

    v = sim.spawn(victim())
    sim.spawn(meddler(v))
    sim.run()
    assert out == [("interrupted", 5)]


def test_kill_skips_finally_blocks():
    """A fail-stop crash must execute nothing -- not even cleanup."""
    sim = Simulator()
    cleaned = []

    def victim():
        try:
            yield 100
        finally:
            cleaned.append("ran")

    def killer(v):
        yield 10
        v.kill("crash")

    v = sim.spawn(victim())
    sim.spawn(killer(v))
    sim.run()
    assert v.killed and not v.alive
    assert cleaned == []  # finally must NOT have run


def test_kill_releases_joiners_with_none():
    sim = Simulator()

    def victim():
        yield 1000
        return "never"

    def killer(v):
        yield 10
        v.kill()

    def joiner(v):
        r = yield from v.join()
        return (sim.now, r)

    v = sim.spawn(victim())
    sim.spawn(killer(v))
    j = sim.spawn(joiner(v))
    sim.run()
    assert j.result == (10, None)


def test_kill_while_sleeping_cancels_pending_wakeup():
    sim = Simulator()

    def victim():
        yield 100

    def killer(v):
        yield 10
        v.kill()

    v = sim.spawn(victim())
    sim.spawn(killer(v))
    sim.run()
    assert sim.now == 10  # the t=100 wakeup must have been dropped


def test_shield_defers_kill_to_region_end():
    sim = Simulator()
    progress = []

    def victim():
        p = sim.current
        p.shield_begin()
        yield 20  # crash arrives here, must be deferred
        progress.append(("inside", sim.now))
        p.shield_end()
        yield 1  # deferred crash lands at this resume
        progress.append(("outside", sim.now))

    def killer(v):
        yield 10
        v.kill("crash")

    v = sim.spawn(victim())
    sim.spawn(killer(v))
    sim.run()
    assert progress == [("inside", 20)]  # shielded step ran, next one did not
    assert v.killed


def test_deadlock_detector_names_blocked_processes():
    from repro.sim import DeadlockError

    sim = Simulator()
    ev = sim.event(label="a condition that never fires")

    def stuck():
        yield ev

    sim.spawn(stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError) as ei:
        sim.run()
    assert "stuck-proc" in str(ei.value)
    assert "a condition that never fires" in str(ei.value)
    assert [p.name for p in ei.value.blocked] == ["stuck-proc"]


def test_daemon_processes_exempt_from_deadlock_detection():
    sim = Simulator()
    ev = sim.event()

    def server():
        yield ev  # idles forever, legitimately

    def client():
        yield 5
        return "done"

    sim.spawn(server(), name="server", daemon=True)
    p = sim.spawn(client())
    sim.run()  # must NOT raise
    assert p.result == "done"


def test_deadlock_detection_can_be_disabled():
    sim = Simulator()
    sim.detect_deadlock = False
    ev = sim.event()

    def stuck():
        yield ev

    sim.spawn(stuck())
    sim.run()  # old silent-return behaviour


def test_suspend_until_defers_wakeups():
    sim = Simulator()
    out = []

    def victim():
        yield 10  # wakeup due at t=10 is deferred to t=50
        out.append(sim.now)

    def preemptor(v):
        yield 5
        v.suspend_until(50)

    v = sim.spawn(victim())
    sim.spawn(preemptor(v))
    sim.run()
    assert out == [50]


def test_waittimer_does_not_fire_after_disarm():
    from repro.sim import WaitTimer

    sim = Simulator()
    ev = Event(sim)
    out = []

    def waiter():
        p = sim.current
        timer = WaitTimer(sim, p, 100)
        v = yield ev
        timer.disarm()
        out.append(("got", v, sim.now))
        yield 200  # run past the (disarmed) deadline

    def trigger():
        yield 30
        ev.trigger("x")

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert out == [("got", "x", 30)]


# -- yielded-effect coercion (the old dead isinstance(effect, int) branch) --
# Non-plain-int delays now go through operator.index: bools and numpy
# integer scalars are real delays, floats and arbitrary objects raise.

def test_yield_bool_true_is_one_cycle_sleep():
    sim = Simulator()
    seen = []

    def proc():
        yield True
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [1]


def test_yield_numpy_int_is_a_delay():
    np = pytest.importorskip("numpy")
    sim = Simulator()
    seen = []

    def proc():
        yield np.int64(3)
        seen.append(sim.now)
        yield np.int32(0)  # zero-delay resume, same cycle
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [3, 3]


def test_yield_float_raises():
    sim = Simulator()

    def proc():
        yield 1.5

    sim.spawn(proc())
    with pytest.raises(TypeError, match="unsupported effect"):
        sim.run()


def test_yield_arbitrary_object_raises():
    sim = Simulator()

    def proc():
        yield object()

    sim.spawn(proc())
    with pytest.raises(TypeError, match="unsupported effect"):
        sim.run()
