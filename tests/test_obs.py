"""Tests for the observability subsystem: event bus + perf counters."""

import pytest

import repro.obs as obs
from repro.core import CCSynch, HybComb, MPServer, OpTable
from repro.machine import Machine, tile_gx
from repro.obs.counters import latency_bucket, merge_counters


def _counter_body(table, machine):
    a = machine.mem.alloc(1)

    def body(c, arg):
        v = yield from c.load(a)
        yield from c.store(a, v + arg)
        return v + arg

    return table.register(body), a


# -- bus basics ------------------------------------------------------------

def test_obs_off_by_default():
    m = Machine(tile_gx())
    assert m.sim.obs is None
    assert m.obs is None


def test_enable_observability_idempotent():
    m = Machine(tile_gx())
    ob = m.enable_observability()
    assert m.sim.obs is ob.bus
    assert m.enable_observability() is ob


def test_double_enable_raises():
    m = Machine(tile_gx())
    m.enable_observability()
    with pytest.raises(RuntimeError):
        obs.Observability(m)


def test_bus_emit_and_subscribe():
    m = Machine(tile_gx())
    ob = m.enable_observability()
    seen = []
    ob.bus.subscribe(lambda t, kind, f: seen.append((t, kind, f)))

    def prog(ctx):
        yield from ctx.load(m.mem.alloc(1))

    ctx = m.thread(0)
    m.spawn(ctx, prog(ctx))
    m.run()
    kinds = [k for _t, k, _f in seen]
    assert "proc.spawn" in kinds
    assert "cache.miss" in kinds
    assert "proc.exit" in kinds
    assert ob.bus.events_emitted == len(seen)
    # timestamps are the simulator clock and never decrease
    times = [t for t, _k, _f in seen]
    assert times == sorted(times)


def test_observed_session_auto_attaches_machines():
    with obs.observed() as session:
        m1 = Machine(tile_gx())
        m2 = Machine(tile_gx())
    assert len(session.machines) == 2
    assert m1.obs is not None and m2.obs is not None
    # session closed: new machines no longer attach
    m3 = Machine(tile_gx())
    assert m3.obs is None


def test_nested_sessions_rejected():
    with obs.observed():
        with pytest.raises(RuntimeError):
            obs.enable()


# -- counters --------------------------------------------------------------

def test_latency_bucket_edges():
    assert latency_bucket(0) == 0
    assert latency_bucket(1) == 1
    assert latency_bucket(2) == 2
    assert latency_bucket(3) == 2
    assert latency_bucket(4) == 3
    assert latency_bucket(63) == 6
    assert latency_bucket(64) == 7


def test_counters_track_mpserver_run():
    m = Machine(tile_gx())
    ob = m.enable_observability()
    table = OpTable()
    op, _a = _counter_body(table, m)
    prim = MPServer(m, table, server_tid=0)
    prim.start()

    def client(ctx, n):
        for _ in range(n):
            yield from prim.apply_op(ctx, op, 1)

    n_clients, n_ops = 4, 25
    for t in range(1, n_clients + 1):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx, n_ops))
    m.run()

    snap = ob.counters.snapshot()
    total = n_clients * n_ops
    assert snap["global"]["requests_served"] == total
    assert snap["core"][0]["requests_served"] == total
    # every request is a 3-word send + 1-word response
    sent = sum(c.get("udn_msgs_sent", 0) for c in snap["core"].values())
    assert sent == 2 * total
    assert snap["global"]["udn_deliveries"] == 2 * total
    assert sum(snap["udn_hist"].values()) == 2 * total


def test_event_stalls_equal_hw_registers():
    """The double-count guard: event-derived stall registers must equal
    the cores' own stall registers exactly (same charge sites)."""
    m = Machine(tile_gx())
    ob = m.enable_observability()
    table = OpTable()
    op, _a = _counter_body(table, m)
    prim = CCSynch(m, table)

    def client(ctx, n):
        for _ in range(n):
            yield from prim.apply_op(ctx, op, 1)
            yield from ctx.fence()

    for t in range(6):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx, 20))
    m.run()

    snap = ob.counters.snapshot()
    for cid, hw in snap["hw"].items():
        ev = snap["core"].get(cid, {})
        for reg in ("stall_mem", "stall_atomic", "stall_fence"):
            assert ev.get(reg, 0) == hw[reg], (cid, reg)


def test_counters_delta_and_merge():
    m = Machine(tile_gx())
    ob = m.enable_observability()
    a = m.mem.alloc(1)

    def prog(ctx, n):
        for _ in range(n):
            yield from ctx.faa(a, 1)

    ctx = m.thread(0)
    m.spawn(ctx, prog(ctx, 10))
    m.run()
    before = ob.counters.snapshot()
    ctx2 = m.thread(1)
    m.spawn(ctx2, prog(ctx2, 5))
    m.run()
    delta = ob.counters.delta(before)
    # only the second batch appears, and zero entries are dropped
    assert delta["core"][1]["atomics"] == 5
    assert 0 not in delta["core"] or "atomics" not in delta["core"].get(0, {})
    merged = merge_counters({}, before)
    merge_counters(merged, delta)
    assert merged["core"][0]["atomics"] == 10
    assert merged["core"][1]["atomics"] == 5


def test_cas_failures_counted_per_line():
    m = Machine(tile_gx())
    ob = m.enable_observability()
    a = m.mem.alloc(1)
    m.mem.poke(a, 7)

    def prog(ctx):
        ok = yield from ctx.cas(a, 0, 1)   # fails: value is 7
        assert not ok
        ok = yield from ctx.cas(a, 7, 1)   # succeeds
        assert ok

    ctx = m.thread(0)
    m.spawn(ctx, prog(ctx))
    m.run()
    snap = ob.counters.snapshot()
    line = m.mem.line_of(a)
    assert snap["core"][0]["cas_failures"] == 1
    assert snap["line"][line]["cas_failures"] == 1
    assert snap["hw"][0]["cas_failures"] == 1


def test_invalidation_attribution():
    """A writer invalidating a sharer shows up on the victim's counter."""
    m = Machine(tile_gx())
    ob = m.enable_observability()
    a = m.mem.alloc(1, isolated=True)

    def reader(ctx):
        yield from ctx.load(a)          # install S on core 0

    def writer(ctx):
        yield from ctx.work(200)        # after the reader finished
        yield from ctx.store(a, 1)      # invalidates core 0
        yield from ctx.fence()

    r = m.thread(0)
    w = m.thread(1)
    m.spawn(r, reader(r))
    m.spawn(w, writer(w))
    m.run()
    snap = ob.counters.snapshot()
    assert snap["core"][0]["invalidations_received"] == 1
    assert snap["line"][m.mem.line_of(a)]["invalidations"] == 1


def test_zero_overhead_when_off():
    """With obs off the simulation takes the exact same cycle path."""
    def run(enable):
        m = Machine(tile_gx())
        if enable:
            m.enable_observability()
        table = OpTable()
        op, a = _counter_body(table, m)
        prim = HybComb(m, table)

        def client(ctx, n):
            for _ in range(n):
                yield from prim.apply_op(ctx, op, 1)

        for t in range(5):
            ctx = m.thread(t)
            m.spawn(ctx, client(ctx, 10))
        m.run()
        return m.now, m.mem.peek(a), [c.snapshot() for c in m.cores]

    assert run(False) == run(True)


def test_session_aggregate_and_csv():
    with obs.observed() as session:
        for _ in range(2):
            m = Machine(tile_gx())
            a = m.mem.alloc(1)

            def prog(ctx):
                yield from ctx.faa(a, 1)

            ctx = m.thread(0)
            m.spawn(ctx, prog(ctx))
            m.run()
    agg = session.aggregate()
    assert agg["core"][0]["atomics"] == 2
    csv = session.metrics_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == "scope,id,counter,value"
    assert any(ln.startswith("core,0,atomics,2") for ln in lines)
    assert any(ln.startswith("hw,0,") for ln in lines)


# -- enable-time baselining (late enable / late source registration) -------

def test_late_enable_baselines_hw_registers():
    """Observability enabled mid-run must not fold pre-enable totals
    into its registers: hw counters read 0 at enable time and track
    only post-enable work."""
    m = Machine(tile_gx())
    table = OpTable()
    op, a = _counter_body(table, m)
    prim = CCSynch(m, table)

    def client(ctx, n):
        for _ in range(n):
            yield from prim.apply_op(ctx, op, 1)

    # phase 1: unobserved warm-up traffic
    for t in range(4):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx, 20))
    m.run()
    raw_before = {c.cid: c.snapshot() for c in m.cores}
    assert any(v for regs in raw_before.values() for v in regs.values())

    ob = m.enable_observability()
    snap0 = ob.counters.snapshot()
    # at enable time every hw register reads zero, despite phase 1
    for regs in snap0["hw"].values():
        assert all(v == 0 for v in regs.values())

    # phase 2: observed traffic (fresh tids; contexts are one-shot)
    for t in range(4, 8):
        ctx = m.thread(t)
        m.spawn(ctx, client(ctx, 20))
    m.run()
    snap1 = ob.counters.snapshot()
    delta = ob.counters.delta(snap0)
    for cid, regs in snap1["hw"].items():
        raw = m.cores[cid].snapshot()
        for name, v in regs.items():
            # snapshot = raw minus the enable-time baseline...
            assert v == raw[name] - raw_before[cid][name]
            # ...and delta(snap0) equals phase-2-only work (cores idle
            # since the enable are dropped from the delta entirely)
            assert delta["hw"].get(cid, {}).get(name, 0) == v


def test_register_source_baselined_at_registration():
    m = Machine(tile_gx())
    ob = m.enable_observability()
    state = {"v": 1000.0}
    first = ob.counters.snapshot()          # snapshot BEFORE the source
    ob.counters.register_source("ops", lambda: state["v"])
    snap = ob.counters.snapshot()
    assert snap["source"]["ops"] == 0.0     # registration is the baseline
    state["v"] = 1007.0
    later = ob.counters.snapshot()
    assert later["source"]["ops"] == 7.0
    # a source registered after `first` still deltas cleanly against it
    assert ob.counters.delta(first)["source"]["ops"] == 7.0
    assert ob.counters.delta(snap)["source"]["ops"] == 7.0
    with pytest.raises(ValueError):
        ob.counters.register_source("ops", lambda: 0.0)
    # sources flow through merge + csv like every other register group
    agg = {}
    merge_counters(agg, later)
    merge_counters(agg, later)
    assert agg["source"]["ops"] == 14.0
    from repro.obs.counters import counters_csv
    assert "source,,ops,14.0" in counters_csv(agg)
