"""Mutual-exclusion and fairness tests for the classic spin locks."""

import pytest

from repro.core import MCSLock, OpTable, TTASLock, TicketLock
from repro.machine import Machine, tile_gx

LOCKS = [TTASLock, TicketLock, MCSLock]


def run_lock_workload(lock_cls, num_threads, ops_each, seed=1):
    """Each thread increments a shared counter under the lock; also
    tracks an in-CS overlap detector."""
    import numpy as np

    m = Machine(tile_gx())
    lock = lock_cls(m)
    counter = m.mem.alloc(1, isolated=True)
    in_cs = {"n": 0, "max": 0}
    rng = np.random.default_rng(seed)

    def prog(ctx, thinks):
        for k in range(ops_each):
            yield from lock.acquire(ctx)
            in_cs["n"] += 1
            in_cs["max"] = max(in_cs["max"], in_cs["n"])
            v = yield from ctx.load(counter)
            yield from ctx.store(counter, v + 1)
            in_cs["n"] -= 1
            yield from lock.release(ctx)
            yield from ctx.work(int(thinks[k]) * 2)

    for i in range(num_threads):
        ctx = m.thread(i)
        m.spawn(ctx, prog(ctx, rng.integers(0, 51, size=ops_each)))
    m.run()
    return m, counter, in_cs


@pytest.mark.parametrize("lock_cls", LOCKS)
def test_lock_mutual_exclusion_and_no_lost_updates(lock_cls):
    m, counter, in_cs = run_lock_workload(lock_cls, num_threads=8, ops_each=25)
    assert in_cs["max"] == 1, "two threads were inside the CS at once"
    assert m.mem.peek(counter) == 8 * 25


@pytest.mark.parametrize("lock_cls", LOCKS)
def test_lock_single_thread(lock_cls):
    m, counter, _ = run_lock_workload(lock_cls, num_threads=1, ops_each=10)
    assert m.mem.peek(counter) == 10


@pytest.mark.parametrize("lock_cls", LOCKS)
@pytest.mark.parametrize("seed", [7, 8])
def test_lock_random_schedules(lock_cls, seed):
    m, counter, in_cs = run_lock_workload(lock_cls, 5, 20, seed=seed)
    assert in_cs["max"] == 1
    assert m.mem.peek(counter) == 100


def test_ticket_lock_is_fifo_fair():
    """With a ticket lock, grant order must equal ticket order."""
    m = Machine(tile_gx())
    lock = TicketLock(m)
    grants = []

    def prog(ctx):
        yield from ctx.work(ctx.tid)  # stagger arrivals deterministically
        yield from lock.acquire(ctx)
        grants.append(ctx.tid)
        yield from ctx.work(100)
        yield from lock.release(ctx)

    for i in range(6):
        ctx = m.thread(i)
        m.spawn(ctx, prog(ctx))
    m.run()
    assert grants == sorted(grants)


def test_mcs_release_with_no_successor_frees_lock():
    m = Machine(tile_gx())
    lock = MCSLock(m)

    def prog(ctx):
        yield from lock.acquire(ctx)
        yield from lock.release(ctx)
        # second acquisition must succeed without contention
        yield from lock.acquire(ctx)
        yield from lock.release(ctx)
        return "ok"

    ctx = m.thread(0)
    p = m.spawn(ctx, prog(ctx))
    m.run()
    assert p.result == "ok"


def test_lock_execute_runs_cs_on_calling_thread():
    m = Machine(tile_gx())
    lock = TTASLock(m)
    table = OpTable()
    a = m.mem.alloc(1)

    def body(ctx, arg):
        v = yield from ctx.load(a)
        yield from ctx.store(a, v + arg)
        return v + arg

    op = table.register(body)
    ctx = m.thread(3)

    def prog():
        r = yield from lock.execute(ctx, table, op, 5)
        return r

    p = m.spawn(ctx, prog())
    m.run()
    assert p.result == 5
    # the CS ran on the caller's core: its counters moved
    assert ctx.core.loads > 0 and ctx.core.stores > 0
