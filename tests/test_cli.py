"""Tests for the top-level ``python -m repro`` CLI."""


from repro.__main__ import main


def test_info_lists_profiles_and_experiments(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "tile-gx8036" in out
    assert "x86-like" in out
    assert "scc-like" in out
    assert "fig3a" in out and "disc-scc" in out
    assert "HybComb" in out


def test_no_args_defaults_to_info(capsys):
    assert main([]) == 0
    assert "machine profiles" in capsys.readouterr().out


def test_quickstart_runs_small(capsys):
    assert main(["quickstart", "4"]) == 0
    out = capsys.readouterr().out
    assert "mp-server" in out and "Mops/s" in out


def test_bench_prints_host_perf(capsys):
    assert main(["bench", "disc-noc"]) == 0
    out = capsys.readouterr().out
    assert "disc-noc:" in out and "wall" in out


def test_bench_profile_prints_hot_functions(capsys):
    assert main(["bench", "disc-noc", "--profile", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "under cProfile" in out
    assert "tottime" in out  # pstats table header
    assert "function calls" in out


def test_bench_rejects_unknown_experiment(capsys):
    assert main(["bench", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_experiments_forwarding(capsys):
    assert main(["experiments", "disc-noc"]) == 0
    out = capsys.readouterr().out
    assert "disc-noc" in out and "analytic" in out
