"""Tests for the coherence protocol: states, costs, RMR/stall accounting."""


from repro.machine import Machine, tile_gx
from repro.mem import LineState


def make_machine(**over):
    return Machine(tile_gx(**over))


def run_thread(m, tid, gen_fn):
    ctx = m.thread(tid)
    p = m.spawn(ctx, gen_fn(ctx))
    m.run()
    return ctx, p


# -- basic load/store ------------------------------------------------------

def test_load_of_uninitialized_memory_is_zero():
    m = make_machine()
    a = m.mem.alloc(1)

    def prog(ctx):
        v = yield from ctx.load(a)
        return v

    _, p = run_thread(m, 0, prog)
    assert p.result == 0


def test_store_then_load_round_trip():
    m = make_machine()
    a = m.mem.alloc(1)

    def prog(ctx):
        yield from ctx.store(a, 77)
        v = yield from ctx.load(a)
        return v

    _, p = run_thread(m, 0, prog)
    assert p.result == 77


def test_first_load_misses_then_hits():
    m = make_machine()
    a = m.mem.alloc(1)

    def prog(ctx):
        yield from ctx.load(a)
        miss_stall = ctx.core.stall_mem
        yield from ctx.load(a)
        return miss_stall, ctx.core.stall_mem

    _, p = run_thread(m, 0, prog)
    miss_stall, total_stall = p.result
    assert miss_stall > 0          # cold miss stalls
    assert total_stall == miss_stall  # second load is a free hit (no extra stall)


def test_load_hit_costs_c_hit_busy():
    m = make_machine()
    a = m.mem.alloc(1)

    def prog(ctx):
        yield from ctx.load(a)
        busy0 = ctx.core.busy
        t0 = m.now
        yield from ctx.load(a)
        return ctx.core.busy - busy0, m.now - t0

    _, p = run_thread(m, 0, prog)
    busy, elapsed = p.result
    assert busy == elapsed == m.cfg.c_hit


def test_store_hit_in_owned_line_is_cheap():
    m = make_machine()
    a = m.mem.alloc(1)

    def prog(ctx):
        yield from ctx.store(a, 1)   # miss: take ownership
        rmr0 = ctx.core.rmr
        yield from ctx.store(a, 2)   # hit in M
        return rmr0, ctx.core.rmr

    _, p = run_thread(m, 0, prog)
    assert p.result[0] == 1
    assert p.result[1] == 1  # no new RMR


def test_words_on_same_line_share_state():
    m = make_machine()
    a = m.mem.alloc(8, isolated=True)  # one full line

    def prog(ctx):
        yield from ctx.load(a)
        rmr0 = ctx.core.rmr
        yield from ctx.load(a + 7)   # same line -> hit
        return rmr0, ctx.core.rmr

    _, p = run_thread(m, 0, prog)
    assert p.result[0] == p.result[1] == 1


# -- cross-core coherence -----------------------------------------------------

def test_single_writer_invalidates_reader():
    """The classic channel pattern of Figure 1: each access after a remote
    write is an RMR on the accessor."""
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def writer(ctx):
        yield from ctx.store(a, 5)

    def reader(ctx):
        yield 200  # let the writer go first
        v = yield from ctx.load(a)
        rmr_first = ctx.core.rmr
        v2 = yield from ctx.load(a)
        return v, v2, rmr_first, ctx.core.rmr

    m.spawn(t0, writer(t0))
    p = m.spawn(t1, reader(t1))
    m.run()
    v, v2, rmr_first, rmr_total = p.result
    assert v == v2 == 5
    assert rmr_first == 1          # fetched from the writer's cache
    assert rmr_total == 1          # second read hits locally


def test_write_after_remote_read_is_rmr():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def reader(ctx):
        yield from ctx.load(a)

    def writer(ctx):
        yield 200
        rmr0 = ctx.core.rmr
        yield from ctx.store(a, 9)
        return ctx.core.rmr - rmr0

    m.spawn(t0, reader(t0))
    p = m.spawn(t1, writer(t1))
    m.run()
    assert p.result == 1


def test_sharers_coexist_on_reads():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    ctxs = [m.thread(i) for i in range(4)]

    def reader(ctx):
        yield from ctx.load(a)

    for ctx in ctxs:
        m.spawn(ctx, reader(ctx))
    m.run()
    for ctx in ctxs:
        assert m.mem.cached_state(ctx.core.cid, a) == LineState.S
    m.mem.check_all_swmr()


def test_writer_gets_exclusive_ownership():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    ctxs = [m.thread(i) for i in range(3)]

    def reader(ctx):
        yield from ctx.load(a)

    def writer(ctx):
        yield 500
        yield from ctx.store(a, 1)

    m.spawn(ctxs[0], reader(ctxs[0]))
    m.spawn(ctxs[1], reader(ctxs[1]))
    m.spawn(ctxs[2], writer(ctxs[2]))
    m.run()
    assert m.mem.cached_state(2, a) == LineState.M
    assert m.mem.cached_state(0, a) is None
    assert m.mem.cached_state(1, a) is None
    m.mem.check_all_swmr()


def test_remote_fetch_costs_more_than_hit():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(35)  # far corner of the mesh

    def writer(ctx):
        yield from ctx.store(a, 5)

    def reader(ctx):
        yield 500
        s0 = ctx.core.stall_mem
        yield from ctx.load(a)
        return ctx.core.stall_mem - s0

    m.spawn(t0, writer(t0))
    p = m.spawn(t1, reader(t1))
    m.run()
    assert p.result >= m.cfg.c_remote_base


# -- spinning ---------------------------------------------------------------

def test_spin_until_sees_remote_write():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def spinner(ctx):
        v = yield from ctx.spin_until(a, lambda v: v == 42)
        return v, m.now

    def writer(ctx):
        yield 1000
        yield from ctx.store(a, 42)

    p = m.spawn(t0, spinner(t0))
    m.spawn(t1, writer(t1))
    m.run()
    v, t = p.result
    assert v == 42
    assert t >= 1000


def test_spin_until_immediate_if_pred_holds():
    m = make_machine()
    a = m.mem.alloc(1)
    m.mem.poke(a, 7)

    def prog(ctx):
        v = yield from ctx.spin_until(a, lambda v: v == 7)
        return v

    _, p = run_thread(m, 0, prog)
    assert p.result == 7


def test_spinning_time_counts_as_wait_not_stall():
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def spinner(ctx):
        yield from ctx.spin_until(a, lambda v: v == 1)
        return ctx.core.wait, ctx.core.stall_mem

    def writer(ctx):
        yield 5000
        yield from ctx.store(a, 1)

    p = m.spawn(t0, spinner(t0))
    m.spawn(t1, writer(t1))
    m.run()
    wait, stall = p.result
    assert wait > 4000               # slept most of the 5000 cycles
    assert stall < 200               # only the two fetches


def test_spin_until_survives_false_wakeups():
    """Writes that do not satisfy the predicate must not terminate the spin."""
    m = make_machine()
    a = m.mem.alloc(1, isolated=True)
    t0 = m.thread(0)
    t1 = m.thread(1)

    def spinner(ctx):
        v = yield from ctx.spin_until(a, lambda v: v >= 3)
        return v

    def writer(ctx):
        for val in (1, 2, 3):
            yield 300
            yield from ctx.store(a, val)

    p = m.spawn(t0, spinner(t0))
    m.spawn(t1, writer(t1))
    m.run()
    assert p.result == 3


# -- fences -------------------------------------------------------------------

def test_fence_charges_stall():
    m = make_machine()

    def prog(ctx):
        yield from ctx.fence()
        return ctx.core.stall_fence

    _, p = run_thread(m, 0, prog)
    assert p.result == m.cfg.c_fence


# -- misc ----------------------------------------------------------------------

def test_peek_poke_cost_nothing():
    m = make_machine()
    a = m.mem.alloc(1)
    m.mem.poke(a, 5)
    assert m.mem.peek(a) == 5
    assert m.now == 0


def test_concurrent_stores_serialize_on_line():
    """Two cores hammering the same line must serialize at the directory."""
    m = make_machine(debug_checks=True)
    a = m.mem.alloc(1, isolated=True)
    ctxs = [m.thread(i) for i in range(2)]

    def prog(ctx):
        for i in range(50):
            yield from ctx.store(a, ctx.tid * 1000 + i)

    for ctx in ctxs:
        m.spawn(ctx, prog(ctx))
    m.run()
    m.mem.check_all_swmr()
    # last committed value must be one of the final writes
    assert m.mem.peek(a) in (49, 1049)
