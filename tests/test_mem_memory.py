"""Unit + property tests for the backing store and allocator."""

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro.mem import Allocator, BackingStore, WORD_MASK


def test_backing_store_defaults_to_zero():
    bs = BackingStore()
    assert bs.read(12345) == 0


def test_backing_store_read_back():
    bs = BackingStore()
    bs.write(10, 42)
    assert bs.read(10) == 42
    assert len(bs) == 1


def test_backing_store_masks_to_64_bits():
    bs = BackingStore()
    bs.write(1, 1 << 64)
    assert bs.read(1) == 0
    bs.write(1, -1)
    assert bs.read(1) == WORD_MASK


def test_allocator_never_returns_null():
    a = Allocator()
    assert a.alloc(1) != 0


def test_allocator_bumps():
    a = Allocator(line_words=8, first_addr=8)
    x = a.alloc(3)
    y = a.alloc(2)
    assert y == x + 3


def test_allocator_isolated_is_line_aligned_and_padded():
    a = Allocator(line_words=8, first_addr=8)
    a.alloc(3)  # misalign the bump pointer
    iso = a.alloc(2, isolated=True)
    assert iso % 8 == 0
    nxt = a.alloc(1)
    # nothing shares the isolated allocation's line
    assert nxt // 8 != iso // 8


def test_alloc_line():
    a = Allocator(line_words=8)
    line = a.alloc_line()
    assert line % 8 == 0


def test_allocator_rejects_bad_sizes():
    a = Allocator()
    with pytest.raises(ValueError):
        a.alloc(0)
    with pytest.raises(ValueError):
        Allocator(line_words=0)
    with pytest.raises(ValueError):
        Allocator(first_addr=0)


@given(st.lists(st.tuples(st.integers(1, 40), st.booleans()), min_size=1, max_size=60))
def test_allocator_never_overlaps(requests):
    a = Allocator(line_words=8)
    spans = []
    for nwords, isolated in requests:
        addr = a.alloc(nwords, isolated=isolated)
        spans.append((addr, addr + nwords))
    spans.sort()
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2, "allocations overlap"


@given(st.lists(st.integers(1, 20), min_size=1, max_size=40))
def test_isolated_allocations_share_no_lines(sizes):
    a = Allocator(line_words=8)
    lines_used = []
    for n in sizes:
        addr = a.alloc(n, isolated=True)
        lines_used.append(set(range(addr // 8, (addr + n - 1) // 8 + 1)))
    for i, li in enumerate(lines_used):
        for lj in lines_used[i + 1:]:
            assert not (li & lj), "isolated allocations share a cache line"
