"""Shared fixtures/helpers for the algorithm and object test modules."""

from __future__ import annotations

import numpy as np

from repro.analysis.linearizability import History
from repro.core import CCSynch, HybComb, MPServer, OpTable, ShmServer
from repro.machine import Machine, tile_gx
from repro.workload.driver import run_ops


def make_counter(machine: Machine, optable: OpTable):
    """Register a fetch-and-increment CS body; returns (addr, opcode).

    The return values of concurrent fetch-and-increments are a strong
    linearizability probe: across all threads they must be exactly
    {0, 1, ..., total-1} with no duplicates.
    """
    addr = machine.mem.alloc(1, isolated=True)

    def fetch_inc(ctx, arg):
        v = yield from ctx.load(addr)
        yield from ctx.store(addr, v + 1)
        return v

    opcode = optable.register(fetch_inc, "fetch_inc")
    return addr, opcode


def build(prim_name: str, num_clients: int, *, max_ops: int = 200, debug: bool = True,
          seed: int = 1, cfg=None):
    """Assemble a machine + primitive + counter op for protocol tests.

    Returns (machine, prim, counter_addr, opcode, client_ctxs).
    """
    machine = Machine(cfg if cfg is not None else tile_gx(debug_checks=debug))
    optable = OpTable()
    addr, opcode = make_counter(machine, optable)
    if prim_name == "mp-server":
        prim = MPServer(machine, optable, server_tid=0)
        client_tids = range(1, num_clients + 1)
    elif prim_name == "shm-server":
        prim = ShmServer(machine, optable, server_tid=0,
                         client_tids=range(1, num_clients + 1))
        client_tids = range(1, num_clients + 1)
    elif prim_name == "HybComb":
        prim = HybComb(machine, optable, max_ops=max_ops)
        client_tids = range(num_clients)
    elif prim_name == "CC-Synch":
        prim = CCSynch(machine, optable, max_ops=max_ops)
        client_tids = range(num_clients)
    else:
        raise ValueError(prim_name)
    prim.start()
    ctxs = [machine.thread(tid) for tid in client_tids]
    return machine, prim, addr, opcode, ctxs


def run_clients(machine, prim, opcode, ctxs, ops_each: int, *, seed: int = 1,
                think_max: int = 50):
    """Run the paper's benchmark loop on every client; returns results.

    Each client repeatedly applies the op, then executes a random number
    of empty-loop iterations (at most ``think_max``), per Section 5.2.
    Returns a list (per client) of lists of return values.
    """
    rng = np.random.default_rng(seed)
    think = machine.cfg.work_cycles_per_iteration
    results = [[] for _ in ctxs]

    def client(i, ctx, thinks):
        for k in range(ops_each):
            v = yield from prim.apply_op(ctx, opcode, 0)
            results[i].append(v)
            yield from ctx.work(int(thinks[k]) * think)

    scripts = [
        (ctx, client(i, ctx, rng.integers(0, think_max + 1, size=ops_each)))
        for i, ctx in enumerate(ctxs)
    ]
    run_ops(machine, scripts, prims=(prim,))
    return results


def record_counter_history(prim_name: str, nthreads: int, ops_each: int,
                           seed: int, *, think_max: int = 60) -> History:
    """Run a counter workload and record its concurrent history.

    The single source of the history-recording loop the linearizability
    and property tests share: each client timestamps its invocation and
    response around ``apply_op`` and records an "inc" operation, giving
    a :class:`~repro.analysis.linearizability.History` ready for
    ``check_linearizable(h, CounterSpec())``.
    """
    machine, prim, _addr, opcode, ctxs = build(prim_name, nthreads, debug=False)
    history = History()
    rng = np.random.default_rng(seed)

    def client(ctx, thinks):
        for k in range(ops_each):
            t0 = machine.now
            v = yield from prim.apply_op(ctx, opcode, 0)
            history.record(ctx.tid, "inc", None, v, t0, machine.now)
            yield from ctx.work(int(thinks[k]))

    scripts = [(ctx, client(ctx, rng.integers(0, think_max, ops_each)))
               for ctx in ctxs]
    run_ops(machine, scripts, prims=(prim,))
    return history
