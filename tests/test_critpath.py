"""Unit tests of the critical-path blame analysis on hand-built streams.

These pin down the painting semantics -- precedence order, exact
partition of the op interval, response refinement after the last
service span, msg_id-matched transit -- on tiny synthetic event streams
where every expected cycle count can be worked out by hand, then check
that the whole-run verdict agrees with the Figure 4a counter breakdown
on real runs.
"""

import repro.obs as obs
from repro.analysis.critpath import (
    CATEGORIES,
    analyze,
    analyze_collector,
    diff_reports,
    stragglers,
)
from repro.workload.driver import WorkloadSpec
from repro.workload.scenarios import run_counter_benchmark


def _op(events, op=0, tid=1, core=1, t0=0, t1=100, measured=True, prim="x"):
    """Wrap ``events`` between an op.begin and op.end pair."""
    return (
        [(t0, "op.begin", {"op": op, "tid": tid, "core": core, "prim": prim})]
        + events
        + [(t1, "op.end", {"op": op, "tid": tid, "core": core,
                           "start": t0, "measured": measured})]
    )


# -- painting semantics -----------------------------------------------------

def test_bare_op_is_all_client():
    rep = analyze(_op([]))
    (o,) = rep.ops
    assert o.blame == {"client": 100}
    assert o.segments == [(0, 100, "client")]
    assert o.dominant == "client"


def test_paint_precedence_and_exact_partition():
    # stall [10,20), recv wait [30,80), service [40,50) on another core
    rep = analyze(_op([
        (20, "cache.stall", {"core": 1, "cycles": 10, "why": "miss",
                             "start": 10}),
        (80, "udn.recv", {"tid": 1, "core": 1, "start": 30, "waited": 50,
                          "words": 1}),
        (50, "server.done", {"core": 0, "client": 1, "prim": "x",
                             "start": 40}),
    ]))
    (o,) = rep.ops
    assert o.blame == {
        "client": 40,       # [0,10) + [20,30) + [80,100)
        "coherence": 10,    # [10,20)
        "queueing": 10,     # [30,40): parked before service started
        "service": 10,      # [40,50)
        "response": 30,     # [50,80): recv wait after service ended
    }
    assert sum(o.blame.values()) == o.latency == 100


def test_serving_core_stalls_become_service_stall():
    rep = analyze(_op([
        (50, "server.done", {"core": 0, "client": 1, "prim": "x",
                             "start": 40}),
        # the *serving* core stalled for [43,48) inside the service span
        (48, "cache.stall", {"core": 0, "cycles": 5, "why": "miss",
                             "start": 43}),
    ]))
    (o,) = rep.ops
    assert o.blame["service"] == 5
    assert o.blame["service_stall"] == 5


def test_atomic_and_backpressure_paint_over_client():
    rep = analyze(_op([
        (15, "atomic.stall", {"core": 1, "cycles": 5, "line": 0}),
        (40, "udn.backpressure", {"core": 1, "start": 30, "cycles": 10,
                                  "dst_core": 0}),
    ]))
    (o,) = rep.ops
    assert o.blame == {"client": 85, "atomic": 5, "backpressure": 10}


def test_udn_transit_matched_by_msg_id():
    rep = analyze(_op([
        (5, "udn.send", {"core": 1, "msg_id": 7, "dst_tid": 0,
                         "dst_core": 0, "words": 3}),
        (12, "udn.deliver", {"core": 0, "msg_id": 7, "words": 3,
                             "latency": 7}),
        # a send whose delivery was never recorded paints nothing
        (60, "udn.send", {"core": 1, "msg_id": 8, "dst_tid": 0,
                          "dst_core": 0, "words": 3}),
    ]))
    (o,) = rep.ops
    assert o.blame["udn_transit"] == 7   # [5,12)
    assert o.blame["client"] == 93


def test_combining_for_others_is_separated_from_client_time():
    rep = analyze(_op([
        (70, "combiner.close", {"tid": 1, "core": 1, "start": 20, "ops": 4,
                                "prim": "x"}),
    ]))
    (o,) = rep.ops
    assert o.blame == {"client": 50, "combining": 50}


def test_spans_outside_the_op_are_clipped():
    rep = analyze(_op([
        # stall straddles t0: only [0,5) lands in the op
        (5, "cache.stall", {"core": 1, "cycles": 10, "why": "miss",
                            "start": -5}),
        # service span starting before t0 is ignored entirely
        (30, "server.done", {"core": 0, "client": 1, "prim": "x",
                             "start": -2}),
    ], t0=0))
    (o,) = rep.ops
    assert o.blame["coherence"] == 5
    assert "service" not in o.blame
    assert sum(o.blame.values()) == 100


def test_begin_without_end_counts_incomplete():
    rep = analyze([(0, "op.begin", {"op": 0, "tid": 1, "core": 1,
                                    "prim": "x"})])
    assert rep.ops == []
    assert rep.incomplete_ops == 1


def test_unmeasured_ops_excluded_from_run_blame():
    events = (_op([], op=0, t0=0, t1=50, measured=False)
              + _op([], op=1, t0=60, t1=100, measured=True))
    rep = analyze(events)
    assert len(rep.ops) == 2
    assert len(rep.measured_ops) == 1
    assert rep.blame == {"client": 40}


# -- whole-run critical path ------------------------------------------------

def test_path_chains_one_threads_consecutive_ops():
    events = (_op([], op=0, t0=0, t1=40) + _op([], op=1, t0=60, t1=100))
    rep = analyze(events)
    assert [o for o, _s, _e, _c in rep.path] == [0, 1]
    assert rep.path_cycles == 80


def test_path_rides_the_serialized_service_resource():
    # two clients; their service spans serialize on the server, so the
    # longest chain hops between ops through the service segments
    events = (
        _op([(80, "server.done", {"core": 0, "client": 1, "prim": "x",
                                  "start": 60})],
            op=0, tid=1, core=1, t0=0, t1=85)
        + _op([(90, "server.done", {"core": 0, "client": 2, "prim": "x",
                                    "start": 82})],
            op=1, tid=2, core=2, t0=5, t1=95)
    )
    rep = analyze(events)
    assert rep.path_blame.get("service", 0) > 0
    ops_on_path = {o for o, _s, _e, _c in rep.path}
    assert ops_on_path == {0, 1}
    # op0's wait + service chained into op1's service beats either op
    # alone (85 and 90 cycles): 60 + 20 + 8 + 5
    assert rep.path_cycles == 93


# -- derived reports --------------------------------------------------------

def test_stragglers_returns_slowest_measured_first():
    events = []
    for i, lat in enumerate((30, 90, 60)):
        events += _op([], op=i, tid=1, core=1, t0=i * 200,
                      t1=i * 200 + lat)
    rep = analyze(events)
    top = stragglers(rep, k=2)
    assert [o.latency for o in top] == [90, 60]


def test_diff_reports_mean_per_op_delta():
    a = analyze(_op([], t0=0, t1=50))
    b = analyze(_op([(40, "atomic.stall", {"core": 1, "cycles": 10,
                                           "line": 0})], t0=0, t1=100))
    d = diff_reports(a, b)
    assert d["client"] == {"a": 50.0, "b": 90.0, "delta": 40.0}
    assert d["atomic"]["delta"] == 10.0
    assert set(d) <= set(CATEGORIES)


# -- agreement with the Figure 4a counter breakdown -------------------------

def test_path_verdict_matches_fig4a_counters():
    """The whole-run analysis must name the same service-stall story as
    the aggregate counter registers: SHM-SERVER's service time is
    dominated by coherence stalls (the 2-RMR critical path), MP-SERVER's
    is essentially stall-free."""
    spec = WorkloadSpec(warmup_cycles=5_000, measure_cycles=15_000)
    shares = {}
    for approach in ("mp-server", "shm-server"):
        with obs.observed(causal=True) as session:
            r = run_counter_benchmark(approach, 10, spec=spec)
        (ob,) = session.machines
        rep = analyze_collector(ob.causal, label=approach)
        svc = rep.blame.get("service", 0)
        stall = rep.blame.get("service_stall", 0)
        path_share = stall / max(svc + stall, 1)
        ctr_share = (r.extra["obs.service_stall_per_op"]
                     / max(r.extra["obs.service_cycles_per_op"], 1e-9))
        shares[approach] = (path_share, ctr_share)
        # same verdict, numerically close
        assert abs(path_share - ctr_share) < 0.1, (approach, shares)
    # and the verdicts are the paper's: shm stall-bound, mp not
    assert shares["shm-server"][0] > 0.3
    assert shares["mp-server"][0] < 0.1
    assert (shares["shm-server"][1] > 0.3) and (shares["mp-server"][1] < 0.1)
